#include "sim/launch_graph.hpp"

#include <cassert>

namespace gcol::sim {

std::atomic<unsigned> LaunchGraph::next_id_{1};

void LaunchGraph::record_range(
    const char* name, std::int64_t n, Schedule schedule, std::int64_t chunk,
    const char* direction, Traffic per_item, Footprint footprint,
    std::function<void(std::int64_t, std::int64_t)> body) {
  finalized_ = false;
  interval_starts_.clear();
  Node node;
  node.kind = Node::Kind::kRange;
  node.name = name;
  node.direction = direction;
  node.n = n;
  node.schedule = schedule;
  node.chunk = chunk;
  node.per_item = per_item;
  node.footprint = std::move(footprint);
  node.range_body = std::move(body);
  if (schedule == Schedule::kDynamic) {
    node.cursor = std::make_unique<std::atomic<std::int64_t>>(0);
  }
  nodes_.push_back(std::move(node));
}

void LaunchGraph::record_slots(
    const char* name, const char* direction, Footprint footprint,
    std::function<void(unsigned, unsigned)> body,
    std::function<Traffic(unsigned, unsigned)> traffic_of) {
  finalized_ = false;
  interval_starts_.clear();
  Node node;
  node.kind = Node::Kind::kSlots;
  node.name = name;
  node.direction = direction;
  node.footprint = std::move(footprint);
  node.slot_body = std::move(body);
  node.traffic_of = std::move(traffic_of);
  nodes_.push_back(std::move(node));
}

void LaunchGraph::record_host(const char* name, Traffic traffic,
                              Footprint footprint,
                              std::function<void()> body) {
  finalized_ = false;
  interval_starts_.clear();
  Node node;
  node.kind = Node::Kind::kHost;
  node.name = name;
  node.direction = nullptr;
  node.absolute = traffic;
  node.footprint = std::move(footprint);
  node.host_body = std::move(body);
  nodes_.push_back(std::move(node));
}

bool LaunchGraph::aligned_valid(const Node& node,
                                const FootprintRegion& region) noexcept {
  if (region.access != AccessClass::kAligned || region.domain <= 0) {
    return false;
  }
  switch (node.kind) {
    case Node::Kind::kRange:
      // Only a statically partitioned range over exactly `domain` items has
      // the slot-stable slices aligned reasoning needs; dynamic scheduling
      // hands chunks to whichever slot asks first.
      return node.schedule == Schedule::kStatic && node.n == region.domain;
    case Node::Kind::kSlots:
      // Slot kernels carve their own slices; the declaration asserts they
      // use slot_range(slot, num_slots, domain).
      return true;
    case Node::Kind::kHost:
      // Host nodes run on slot 0 only — no partition to align to.
      return false;
  }
  return false;
}

bool LaunchGraph::compatible(const Node& a, const Node& b) noexcept {
  // Unknown footprints are conservative: never share an interval.
  if (a.footprint.empty() || b.footprint.empty()) return false;
  // Scratch lanes are single re-typeable blocks: any write to a lane the
  // other node touches is a conflict regardless of declared classes.
  if ((a.footprint.lanes_written() &
       (b.footprint.lanes_read() | b.footprint.lanes_written())) != 0) {
    return false;
  }
  if ((a.footprint.lanes_read() & b.footprint.lanes_written()) != 0) {
    return false;
  }
  for (const FootprintRegion& ra : a.footprint.regions()) {
    for (const FootprintRegion& rb : b.footprint.regions()) {
      if (!ra.overlaps(rb)) continue;
      if (!ra.write && !rb.write) continue;  // read/read never conflicts
      // Same-partition dependence: replay runs interval nodes in order
      // within each slot, so an aligned write feeding an aligned read (or a
      // second aligned write) of the same domain is ordered per item.
      if (ra.domain == rb.domain && aligned_valid(a, ra) &&
          aligned_valid(b, rb)) {
        continue;
      }
      // Declared-benign race: a relaxed read tolerates the concurrent write.
      if (ra.write && !rb.write && rb.access == AccessClass::kRelaxed) {
        continue;
      }
      if (rb.write && !ra.write && ra.access == AccessClass::kRelaxed) {
        continue;
      }
      return false;
    }
  }
  return true;
}

void LaunchGraph::finalize() {
  if (finalized_) return;
  interval_starts_.clear();
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    bool merge = !interval_starts_.empty();
    if (merge) {
      // B must be compatible with EVERY member of the open interval: an
      // interval has no internal barriers, so all pairs run concurrently
      // (up to the per-slot in-order guarantee aligned_valid encodes).
      for (std::size_t j = interval_starts_.back(); j < k && merge; ++j) {
        merge = compatible(nodes_[j], nodes_[k]);
      }
    }
    if (!merge) interval_starts_.push_back(k);
    nodes_[k].interval = static_cast<unsigned>(interval_starts_.size() - 1);
  }
  finalized_ = true;
}

void Device::replay(LaunchGraph& g) {
  ExecContext& ctx = context();
  assert(ctx.capture == nullptr && "replay inside capture is a logic error");
  g.finalize();
  if (g.nodes_.empty()) return;
  const unsigned width = context_width(ctx);
  LaunchListener* listener = ctx.listener.load(std::memory_order_acquire);
  LaunchListener* tracer = trace_listener();
  // The launch counter advances by the node count so Coloring's
  // kernel_launches (the paper's global-sync proxy by NAME) matches eager
  // execution; the barrier savings are reported via interval_head instead.
  ctx.launches.fetch_add(g.nodes_.size(), std::memory_order_relaxed);
  ++g.replays_;
  const bool observed = listener != nullptr || tracer != nullptr;
  HwSampler* sampler = observed ? hw_sampler() : nullptr;

  using Node = LaunchGraph::Node;

  // One slot's share of one node inside a barrier interval; returns the
  // slot's item count (the same accounting dispatch_observed stamps).
  const auto run_slot_share = [](const Node& node, unsigned slot,
                                 unsigned slots) -> std::int64_t {
    switch (node.kind) {
      case Node::Kind::kRange: {
        if (node.schedule == Schedule::kStatic || slots == 1) {
          const auto [begin, end] = slot_range(slot, slots, node.n);
          if (begin < end) node.range_body(begin, end);
          return end - begin;
        }
        std::int64_t chunk = node.chunk;
        if (chunk <= 0) {
          chunk = default_chunk(node.n, static_cast<std::int64_t>(slots));
        }
        std::atomic<std::int64_t>& cursor = *node.cursor;
        std::int64_t claimed = 0;
        for (;;) {
          const std::int64_t begin =
              cursor.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= node.n) break;
          const std::int64_t end =
              begin + chunk < node.n ? begin + chunk : node.n;
          node.range_body(begin, end);
          claimed += end - begin;
        }
        return claimed;
      }
      case Node::Kind::kSlots:
        node.slot_body(slot, slots);
        return 1;
      case Node::Kind::kHost:
        if (slot == 0) {
          node.host_body();
          return 1;
        }
        return 0;
    }
    return 0;
  };

  for (std::size_t iv = 0; iv < g.interval_starts_.size(); ++iv) {
    const std::size_t first = g.interval_starts_[iv];
    const std::size_t last = iv + 1 < g.interval_starts_.size()
                                 ? g.interval_starts_[iv + 1]
                                 : g.nodes_.size();
    for (std::size_t k = first; k < last; ++k) {
      if (g.nodes_[k].cursor) {
        g.nodes_[k].cursor->store(0, std::memory_order_relaxed);
      }
    }
    // Serial execution mirrors the eager fast paths exactly: a one-worker
    // lane always, and intervals of only tiny range / host nodes (the
    // kInlineLaunchItems tail regime). Slot kernels always fan out — every
    // slot's body must run, as in eager launch_slots.
    bool serial = width == 1;
    if (!serial) {
      serial = true;
      for (std::size_t k = first; k < last && serial; ++k) {
        const Node& node = g.nodes_[k];
        serial = node.kind == Node::Kind::kHost ||
                 (node.kind == Node::Kind::kRange &&
                  node.n <= kInlineLaunchItems);
      }
    }
    const unsigned slots = serial ? 1u : width;

    if (!observed) {
      if (serial) {
        for (std::size_t k = first; k < last; ++k) {
          run_slot_share(g.nodes_[k], 0, 1);
        }
      } else {
        pool_.run_on(ctx.first_worker, width, [&](unsigned slot) {
          for (std::size_t k = first; k < last; ++k) {
            run_slot_share(g.nodes_[k], slot, width);
          }
        });
      }
      continue;
    }

    // Observed replay: ONE telemetry stamp per interval (per slot), with
    // the interval's wall time and telemetry attributed to the head node.
    const Stopwatch watch;
    if (serial) {
      SlotTelemetry& t = ctx.telemetry[0];
      HwCounters hw_begin;
      const bool hw_ok = sample_hw_begin(sampler, hw_begin);
      t.start_ms = watch.elapsed_ms();
      std::int64_t items = 0;
      for (std::size_t k = first; k < last; ++k) {
        items += run_slot_share(g.nodes_[k], 0, 1);
      }
      t.items = items;
      t.end_ms = watch.elapsed_ms();
      t.stream = ctx.stream;
      sample_hw_end(t, sampler, hw_ok, hw_begin);
    } else {
      pool_.run_on(ctx.first_worker, width, [&](unsigned slot) {
        SlotTelemetry& t = ctx.telemetry[slot];
        HwCounters hw_begin;
        const bool hw_ok = sample_hw_begin(sampler, hw_begin);
        t.start_ms = watch.elapsed_ms();
        std::int64_t items = 0;
        for (std::size_t k = first; k < last; ++k) {
          items += run_slot_share(g.nodes_[k], slot, width);
        }
        t.items = items;
        t.end_ms = watch.elapsed_ms();
        t.stream = ctx.stream;
        sample_hw_end(t, sampler, hw_ok, hw_begin);
      });
    }
    const double elapsed = watch.elapsed_ms();
    // Per-node per-slot byte splits are not reconstructable after fusion;
    // modeled traffic is carried per node in LaunchInfo.traffic below, and
    // the reused telemetry array must not leak an earlier launch's bytes.
    for (unsigned s = 0; s < slots; ++s) {
      ctx.telemetry[s].bytes_read = 0;
      ctx.telemetry[s].bytes_written = 0;
    }
    for (std::size_t k = first; k < last; ++k) {
      const Node& node = g.nodes_[k];
      Traffic traffic{};
      switch (node.kind) {
        case Node::Kind::kRange:
          traffic = node.per_item * node.n;
          break;
        case Node::Kind::kSlots:
          if (node.traffic_of) {
            for (unsigned s = 0; s < slots; ++s) {
              traffic += node.traffic_of(s, slots);
            }
          }
          break;
        case Node::Kind::kHost:
          traffic = node.absolute;
          break;
      }
      const bool head = k == first;
      LaunchInfo info{node.name,
                      node.items(slots),
                      slots,
                      head ? elapsed : 0.0,
                      head ? ctx.telemetry.get() : nullptr,
                      node.direction,
                      ctx.stream,
                      traffic,
                      head && sampler != nullptr};
      info.graphed = true;
      info.interval_head = head;
      info.graph_id = g.id_;
      info.graph_node = static_cast<unsigned>(k);
      notify(listener, tracer, info);
    }
  }
}

}  // namespace gcol::sim
