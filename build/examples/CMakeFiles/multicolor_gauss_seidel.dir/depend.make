# Empty dependencies file for multicolor_gauss_seidel.
# This may be replaced when dependencies are built.
