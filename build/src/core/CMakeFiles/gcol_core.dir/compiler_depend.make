# Empty compiler generated dependencies file for gcol_core.
# This may be replaced when dependencies are built.
