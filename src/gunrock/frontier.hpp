#pragma once
// Vertex frontiers — the central data structure of Gunrock's data-centric
// abstraction (paper §III-B): "operations on vertex or edge frontiers".
//
// A frontier is either the implicit full vertex set (the common case for the
// coloring algorithms, which keep all vertices active and early-out on
// colored ones — Algorithm 5 line 18) or an explicit compacted vertex list
// produced by filter/advance.

#include <cassert>
#include <numeric>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace gcol::gr {

class Frontier {
 public:
  /// The implicit frontier containing every vertex of an n-vertex graph.
  [[nodiscard]] static Frontier all(vid_t num_vertices) {
    Frontier f;
    f.num_vertices_ = num_vertices;
    f.implicit_all_ = true;
    return f;
  }

  /// An explicit frontier. `vertices` must contain valid ids < num_vertices.
  [[nodiscard]] static Frontier of(std::vector<vid_t> vertices,
                                   vid_t num_vertices) {
    Frontier f;
    f.num_vertices_ = num_vertices;
    f.implicit_all_ = false;
    f.vertices_ = std::move(vertices);
    return f;
  }

  /// An empty frontier over an n-vertex graph.
  [[nodiscard]] static Frontier empty(vid_t num_vertices) {
    return of({}, num_vertices);
  }

  [[nodiscard]] vid_t num_vertices() const noexcept { return num_vertices_; }

  [[nodiscard]] bool is_all() const noexcept { return implicit_all_; }

  [[nodiscard]] std::int64_t size() const noexcept {
    return implicit_all_ ? num_vertices_
                         : static_cast<std::int64_t>(vertices_.size());
  }

  [[nodiscard]] bool is_empty() const noexcept { return size() == 0; }

  /// The i-th active vertex.
  [[nodiscard]] vid_t vertex(std::int64_t i) const noexcept {
    return implicit_all_ ? static_cast<vid_t>(i)
                         : vertices_[static_cast<std::size_t>(i)];
  }

  /// Steals the vertex buffer, leaving the frontier empty — the double-
  /// buffering handshake: a filter loop recycles the outgoing frontier's
  /// allocation as the next compaction's output buffer. Implicit-all
  /// frontiers own no buffer and yield an empty vector.
  [[nodiscard]] std::vector<vid_t> release_vertices() noexcept {
    implicit_all_ = false;
    std::vector<vid_t> buffer = std::move(vertices_);
    vertices_.clear();
    return buffer;
  }

  /// Materialized vertex list (allocates for implicit-all frontiers).
  [[nodiscard]] std::vector<vid_t> to_vector() const {
    if (!implicit_all_) return vertices_;
    std::vector<vid_t> v(static_cast<std::size_t>(num_vertices_));
    std::iota(v.begin(), v.end(), vid_t{0});
    return v;
  }

 private:
  Frontier() = default;
  vid_t num_vertices_ = 0;
  bool implicit_all_ = false;
  std::vector<vid_t> vertices_;
};

}  // namespace gcol::gr
