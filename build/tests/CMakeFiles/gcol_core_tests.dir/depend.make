# Empty dependencies file for gcol_core_tests.
# This may be replaced when dependencies are built.
