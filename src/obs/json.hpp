#pragma once
// Minimal JSON document model + writer for the observability layer and the
// bench `--json` pipeline. Insertion order of object keys is preserved so
// emitted records are schema-stable (the same harness always writes the same
// key sequence), which keeps BENCH_*.json diffs meaningful across runs.
//
// Deliberately small: build documents, serialize them, nothing else. No
// parsing (CI validates the output with an independent reader).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gcol::obs {

/// A JSON value: null, bool, integer, double, string, array or object.
/// Objects preserve insertion order and reject duplicate keys by replacing
/// the previous value (last write wins), matching typical writer behavior.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(std::int64_t value) : type_(Type::kInt), int_(value) {}
  Json(int value) : Json(static_cast<std::int64_t>(value)) {}
  Json(std::uint64_t value) : Json(static_cast<std::int64_t>(value)) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(std::string_view value) : Json(std::string(value)) {}
  Json(const char* value) : Json(std::string(value)) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Number of elements (array) or members (object); 0 for scalars.
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// Appends to an array (the value must be an array).
  Json& push_back(Json value);

  /// Sets a member on an object (the value must be an object). Replaces an
  /// existing member in place, preserving its original position.
  Json& set(std::string_view key, Json value);

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Array element access; nullptr when out of range or not an array.
  [[nodiscard]] const Json* at(std::size_t index) const;

  /// Object keys in insertion order (empty for non-objects).
  [[nodiscard]] const std::vector<std::string>& keys() const noexcept {
    return keys_;
  }

  /// Scalar accessors; only meaningful for the matching type.
  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] std::int64_t as_int() const noexcept { return int_; }
  [[nodiscard]] double as_double() const noexcept { return double_; }
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;
  }

  /// Serializes the document. indent < 0 emits compact single-line JSON;
  /// indent >= 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// RFC 8259 string escaping of `raw` (quotes not included): ", \ and
  /// control characters are escaped; everything else (including UTF-8
  /// multibyte sequences) passes through untouched.
  [[nodiscard]] static std::string escape(std::string_view raw);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  // Array: values_ only. Object: keys_[i] names values_[i]. Two parallel
  // vectors because std::pair of an incomplete type is not portable.
  std::vector<std::string> keys_;
  std::vector<Json> values_;
};

/// Writes `document.dump(indent)` plus a trailing newline to `path`.
/// Returns false on any I/O failure.
bool write_json_file(const std::string& path, const Json& document,
                     int indent = 2);

}  // namespace gcol::obs
