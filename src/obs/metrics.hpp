#pragma once
// Per-run observability: a metrics payload every coloring algorithm fills in
// and every harness can serialize. Three kinds of measurements, mirroring
// what the paper's comparative analysis needs (and what Gunrock's own
// methodology records):
//
//   counters — scalar totals ("conflicts", "recolor_passes");
//   series   — one value per outer iteration ("frontier", "colored",
//              "colors_opened"): the per-round trajectory behind Figure 1's
//              endpoint numbers;
//   kernels  — per-kernel-name launch aggregates (count, work items, wall
//              time) captured from the virtual device, the CPU analogue of a
//              per-kernel profiler timeline.
//
// All three preserve first-insertion order so serialized output is
// schema-stable. Recording is host-thread-only and O(1) amortized per call,
// cheap enough to stay enabled inside timed benchmark regions.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "sim/device.hpp"

namespace gcol::obs {

/// Aggregate over every launch of one named kernel.
struct KernelStat {
  std::uint64_t launches = 0;  ///< times this kernel was launched
  std::int64_t items = 0;      ///< total work items across launches
  double total_ms = 0.0;       ///< total wall time including barriers
};

class Metrics {
 public:
  // ---- scalar counters ----------------------------------------------------
  void add_counter(std::string_view name, std::int64_t delta = 1);
  /// Current value; 0 when the counter was never touched.
  [[nodiscard]] std::int64_t counter(std::string_view name) const;
  [[nodiscard]] const std::vector<std::string>& counter_names() const noexcept {
    return counter_names_;
  }

  // ---- per-iteration series -----------------------------------------------
  /// Appends one sample to the named series (creating it on first use).
  void push(std::string_view series, std::int64_t value);
  /// The series' samples; nullptr when it was never pushed to.
  [[nodiscard]] const std::vector<std::int64_t>* series(
      std::string_view name) const;
  [[nodiscard]] const std::vector<std::string>& series_names() const noexcept {
    return series_names_;
  }

  // ---- per-kernel launch aggregates ---------------------------------------
  void record_kernel(std::string_view name, std::int64_t items, double ms);
  [[nodiscard]] const KernelStat* kernel(std::string_view name) const;
  [[nodiscard]] const std::vector<std::string>& kernel_names() const noexcept {
    return kernel_names_;
  }
  /// Sum of KernelStat::launches over every recorded kernel.
  [[nodiscard]] std::uint64_t total_kernel_launches() const;
  /// Sum of KernelStat::total_ms over every recorded kernel.
  [[nodiscard]] double total_kernel_ms() const;

  [[nodiscard]] bool empty() const noexcept {
    return counter_names_.empty() && series_names_.empty() &&
           kernel_names_.empty();
  }
  void clear();

  /// Accumulates `other` into this: counters add, kernel stats add, series
  /// append sample-wise (used when aggregating repeated runs).
  void merge(const Metrics& other);

  /// Stable schema: {"counters": {...}, "series": {...}, "kernels":
  /// {name: {"launches": N, "items": N, "total_ms": F}}}. Empty sections are
  /// omitted so untouched metrics serialize as {}.
  [[nodiscard]] Json to_json() const;

 private:
  // Insertion-ordered maps as parallel vectors; the handful of distinct
  // names per run makes linear lookup faster than hashing.
  std::vector<std::string> counter_names_;
  std::vector<std::int64_t> counter_values_;
  std::vector<std::string> series_names_;
  std::vector<std::vector<std::int64_t>> series_values_;
  std::vector<std::string> kernel_names_;
  std::vector<KernelStat> kernel_stats_;
};

/// RAII capture of a device's kernel-launch stream into a Metrics: installs
/// itself as the device's launch listener on construction and restores the
/// previously installed listener on destruction, so scopes nest (an
/// algorithm invoked from inside another records into its own payload).
/// Launch notifications arrive on the host thread after each launch's
/// barrier, so no synchronization is needed.
class ScopedDeviceMetrics final : public sim::LaunchListener {
 public:
  ScopedDeviceMetrics(sim::Device& device, Metrics& metrics)
      : device_(device),
        metrics_(metrics),
        previous_(device.set_launch_listener(this)) {}

  ~ScopedDeviceMetrics() override { device_.set_launch_listener(previous_); }

  ScopedDeviceMetrics(const ScopedDeviceMetrics&) = delete;
  ScopedDeviceMetrics& operator=(const ScopedDeviceMetrics&) = delete;

  void on_kernel_launch(const sim::LaunchInfo& info) override {
    metrics_.record_kernel(info.name, info.items, info.elapsed_ms);
  }

 private:
  sim::Device& device_;
  Metrics& metrics_;
  sim::LaunchListener* previous_;
};

}  // namespace gcol::obs
