#include "core/gunrock_hash.hpp"

#include <atomic>
#include <vector>

#include "core/verify.hpp"
#include "gunrock/enactor.hpp"
#include "gunrock/frontier.hpp"
#include "gunrock/operators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/atomics.hpp"
#include "sim/launch_graph.hpp"
#include "sim/reduce.hpp"
#include "sim/rng.hpp"
#include "sim/timer.hpp"

namespace gcol::color {

namespace {

inline bool priority_less(std::int32_t ra, vid_t a, std::int32_t rb,
                          vid_t b) noexcept {
  return ra < rb || (ra == rb && a < b);
}

}  // namespace

Coloring gunrock_hash_color(const graph::Csr& csr,
                            const GunrockHashOptions& options) {
  const vid_t n = csr.num_vertices;
  const auto un = static_cast<std::size_t>(n);
  auto& device = sim::Device::instance();

  Coloring result;
  result.algorithm = "gunrock_hash";
  result.colors.assign(un, kUncolored);
  if (n == 0) return result;
  const obs::ScopedDeviceMetrics scoped(device, result.metrics);

  const std::int32_t hash_size =
      options.hash_size < 1 ? 1 : options.hash_size;

  // Draws and tie ids key on original vertex ids (Options::original_id):
  // the proposal races stay, but each logical vertex's priority is the same
  // under every reorder strategy.
  std::vector<std::int32_t> random(un);
  const sim::CounterRng rng(options.seed);
  device.launch("gunrock_hash::init_random", n, [&](std::int64_t v) {
    random[static_cast<std::size_t>(v)] = rng.uniform_int31(
        static_cast<std::uint64_t>(options.original_id(
            static_cast<vid_t>(v))));
  });
  const auto tie_of = [&](vid_t v) { return options.original_id(v); };

  std::int32_t* colors = result.colors.data();
  // Per-vertex prohibited-color table: hash_size slots, kUncolored = empty.
  std::vector<std::int32_t> hash_table(un * static_cast<std::size_t>(hash_size),
                                       kUncolored);
  // Iteration a vertex was (tentatively) colored in; kUncolored = never.
  // Entries < current iteration are final, == current are tentative.
  std::vector<std::int32_t> colored_iter(un, kUncolored);
  // Vertices that lost a conflict must take a fresh color next time; this
  // guarantees the globally max-priority uncolored vertex finalizes within
  // two iterations (progress guarantee; see tests/core/hash_test).
  std::vector<std::uint8_t> lost_conflict(un, 0);

  std::atomic<std::int64_t> conflicts{0};
  std::int64_t prev_colored = 0;
  std::int64_t prev_conflicts = 0;
  // Bitmap modes keep the round-start uncolored set as a bitmap frontier.
  // Every operator below already early-outs on vertices outside that set
  // (colored, or not tentative this round), so iterating only the members
  // is behavior-identical to the implicit-all sweep — tentative colors and
  // conflict losers all live inside the round-start uncolored set.
  const bool bitmap = options.frontier_mode != gr::FrontierMode::kSparse;
  gr::Frontier frontier = bitmap
                              ? gr::Frontier::all_bits(n, options.frontier_mode)
                              : gr::Frontier::all(n);
  std::vector<std::uint64_t> spare_words;  // bitmap double buffer
  const double avg_degree = csr.average_degree();

  // Checks the per-vertex table; colors not found may still conflict — the
  // table is bounded and lossy by design.
  auto prohibited = [&](vid_t v, std::int32_t c) {
    const std::size_t base =
        static_cast<std::size_t>(v) * static_cast<std::size_t>(hash_size);
    for (std::int32_t s = 0; s < hash_size; ++s) {
      if (hash_table[base + static_cast<std::size_t>(s)] == c) return true;
    }
    return false;
  };

  // Deterministic color choice for a candidate: reuse the first known-safe
  // existing color unless the candidate previously lost a conflict, else
  // open a fresh color (odd for max-role, even for min-role).
  auto choose_color = [&](vid_t cand, std::int32_t iteration, bool max_role) {
    if (lost_conflict[static_cast<std::size_t>(cand)] == 0) {
      const std::int32_t used_limit = 2 * iteration;  // colors opened so far
      const std::int32_t probe_limit =
          used_limit < 2 * hash_size ? used_limit : 2 * hash_size;
      for (std::int32_t c = 0; c < probe_limit; ++c) {
        if (!prohibited(cand, c)) return c;
      }
    }
    return max_role ? 2 * iteration : 2 * iteration + 1;
  };

  // The round's iteration number rides in a host-written cell so the SAME
  // three operator closures serve the eager path and the captured replay
  // graph (naumov's iteration-cell pattern).
  std::int32_t round_iteration = 0;

  // HashColorOp (Algorithm 6): every uncolored vertex proposes colors for
  // the max- and min-priority members of {itself} U uncolored neighbors.
  const auto propose_op = [&](vid_t v) {
    const std::int32_t iteration = round_iteration;
    const auto uv = static_cast<std::size_t>(v);
    if (sim::atomic_load(colors[uv]) != kUncolored) return;
    vid_t cand_max = v;
    vid_t cand_min = v;
    for (const vid_t u : csr.neighbors(v)) {
      const auto uu = static_cast<std::size_t>(u);
      if (sim::atomic_load(colors[uu]) != kUncolored) continue;
      if (priority_less(random[static_cast<std::size_t>(cand_max)],
                        tie_of(cand_max), random[uu], tie_of(u))) {
        cand_max = u;
      }
      if (priority_less(random[uu], tie_of(u),
                        random[static_cast<std::size_t>(cand_min)],
                        tie_of(cand_min))) {
        cand_min = u;
      }
    }
    // Propose. Writes race between proposers; conflict resolution repairs
    // any disagreement (the GPU implementation has the same property).
    sim::atomic_store(colors[static_cast<std::size_t>(cand_max)],
                      choose_color(cand_max, iteration, /*max_role=*/true));
    sim::atomic_store(colored_iter[static_cast<std::size_t>(cand_max)],
                      iteration);
    if (cand_min != cand_max) {
      sim::atomic_store(colors[static_cast<std::size_t>(cand_min)],
                        choose_color(cand_min, iteration, /*max_role=*/false));
      sim::atomic_store(colored_iter[static_cast<std::size_t>(cand_min)],
                        iteration);
    }
  };

  // Conflict-resolution operator: tentative vertices re-check their
  // neighborhood; the lower-priority endpoint of a monochromatic edge
  // (or the tentative endpoint, when the other is final) uncolors itself.
  const auto conflict_op = [&](vid_t v) {
    const std::int32_t iteration = round_iteration;
    const auto uv = static_cast<std::size_t>(v);
    if (sim::atomic_load(colored_iter[uv]) != iteration) return;
    const std::int32_t cv = sim::atomic_load(colors[uv]);
    if (cv == kUncolored) return;
    for (const vid_t u : csr.neighbors(v)) {
      const auto uu = static_cast<std::size_t>(u);
      if (sim::atomic_load(colors[uu]) != cv) continue;
      const std::int32_t u_iter = sim::atomic_load(colored_iter[uu]);
      const bool u_final = u_iter != kUncolored && u_iter < iteration;
      if (u_final ||
          priority_less(random[uv], tie_of(v), random[uu], tie_of(u))) {
        sim::atomic_store(colors[uv], kUncolored);
        sim::atomic_store(colored_iter[uv], kUncolored);
        lost_conflict[uv] = 1;
        conflicts.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  };

  // Hash-generation operator: still-uncolored vertices record their
  // neighbors' colors as prohibited (bounded table; overflow ignored). The
  // neighbor color reads are relaxed atomics: eagerly the conflict pass
  // finished a launch earlier, but the fused replay interval below can
  // uncolor a neighbor while another slot is already hashing — recording a
  // color that later gets revoked only makes the bounded table more
  // conservative (a skipped reuse candidate), never improper.
  const auto hashgen_op = [&](vid_t v) {
    const auto uv = static_cast<std::size_t>(v);
    if (colors[uv] != kUncolored) return;
    const std::size_t base = uv * static_cast<std::size_t>(hash_size);
    for (const vid_t u : csr.neighbors(v)) {
      const std::int32_t cu =
          sim::atomic_load(colors[static_cast<std::size_t>(u)]);
      if (cu == kUncolored) continue;
      // Insert if absent and a slot is free.
      bool present = false;
      std::int32_t free_slot = -1;
      for (std::int32_t s = 0; s < hash_size; ++s) {
        const std::int32_t entry =
            hash_table[base + static_cast<std::size_t>(s)];
        if (entry == cu) {
          present = true;
          break;
        }
        if (entry == kUncolored && free_slot < 0) free_slot = s;
      }
      if (!present && free_slot >= 0) {
        hash_table[base + static_cast<std::size_t>(free_slot)] = cu;
      }
    }
  };
  const auto survive_op = [&](vid_t v) {
    hashgen_op(v);
    return colors[static_cast<std::size_t>(v)] == kUncolored;
  };

  const sim::Stopwatch watch;
  const std::uint64_t launches_before = device.launch_count();
  gr::Enactor enactor(device, options.max_iterations);
  gr::EnactorStats stats;

  if (options.graph_replay && bitmap) {
    // Launch-graph replay (DESIGN.md §3i): the bitmap round is three fixed-
    // shape word-granular kernels — propose, conflict-resolve, and the fused
    // hashgen+rebuild filter. Propose writes colors/colored_iter of
    // ARBITRARY vertices (the two candidates can be neighbors), so its
    // exclusive-write footprint keeps it an interval of its own; conflict
    // and the filter both confine their writes to the owning word partition
    // (conflict uncolors only v itself, hashgen fills only v's own table
    // row), so they fuse — three launches, TWO barrier intervals per round.
    // At one worker replay is serial in record order and byte-identical to
    // eager; at higher widths the algorithm is speculative either way.
    std::vector<std::uint64_t> words_a = frontier.release_words();
    std::vector<std::uint64_t> words_b(words_a.size(), 0);
    std::vector<std::int64_t> counts(device.num_workers(), 0);
    const auto num_words = static_cast<std::int64_t>(words_a.size());
    const std::int64_t word_bytes = num_words * gr::kWordBytes;
    const std::int64_t color_bytes =
        static_cast<std::int64_t>(un) *
        static_cast<std::int64_t>(sizeof(std::int32_t));
    sim::GraphCache cache;
    std::int64_t size = n;
    bool flipped = false;
    stats = enactor.enact([&](std::int32_t iteration) {
      const obs::ScopedPhase phase("gunrock_hash::round");
      round_iteration = iteration;
      const std::uint64_t* in = (flipped ? words_b : words_a).data();
      std::uint64_t* out = (flipped ? words_a : words_b).data();
      const gr::Direction dir =
          gr::resolve_direction(options.frontier_mode, size, n, avg_degree);
      const std::uint64_t key =
          (flipped ? 1u : 0u) | (dir == gr::Direction::kPull ? 2u : 0u);
      sim::LaunchGraph* graph = cache.find(key);
      if (graph == nullptr) {
        graph = &cache.emplace(key);
        const std::int64_t iter_bytes = color_bytes;  // colored_iter: n int32
        device.begin_capture(*graph);
        device.capture_footprint(sim::Footprint{}
                                     .reads(in, word_bytes)
                                     .reads_relaxed(colors, color_bytes)
                                     .writes(colors, color_bytes)
                                     .writes(colored_iter.data(), iter_bytes)
                                     .reads(random.data(), color_bytes)
                                     .reads(lost_conflict.data(), n)
                                     .reads(hash_table.data(),
                                            static_cast<std::int64_t>(
                                                hash_table.size() *
                                                sizeof(std::int32_t))));
        gr::compute_bits_recorded(device, in, num_words, dir, propose_op);
        device.capture_footprint(
            sim::Footprint{}
                .reads(in, word_bytes)
                .reads_relaxed(colors, color_bytes)
                .writes_aligned(colors, color_bytes, num_words)
                .reads_relaxed(colored_iter.data(), iter_bytes)
                .writes_aligned(colored_iter.data(), iter_bytes, num_words)
                .writes_aligned(lost_conflict.data(), n, num_words)
                .reads(random.data(), color_bytes));
        gr::compute_bits_recorded(device, in, num_words, dir, conflict_op);
        device.capture_footprint(
            sim::Footprint{}
                .reads(in, word_bytes)
                .reads_relaxed(colors, color_bytes)
                .writes_aligned(hash_table.data(),
                                static_cast<std::int64_t>(
                                    hash_table.size() * sizeof(std::int32_t)),
                                num_words)
                .writes(out, word_bytes)
                .writes(counts.data(),
                        static_cast<std::int64_t>(counts.size() *
                                                  sizeof(std::int64_t))));
        gr::filter_bits_recorded(device, in, out, num_words, counts.data(),
                                 dir, survive_op);
        device.end_capture();
      }
      device.replay(*graph);
      size = 0;
      for (const std::int64_t c : counts) size += c;
      flipped = !flipped;
      const std::int64_t colored = n - size;
      const std::int64_t conflicts_now =
          conflicts.load(std::memory_order_relaxed);
      result.metrics.push("frontier", n - prev_colored);
      result.metrics.push("colored", colored);
      result.metrics.push("colors_opened", 2 * (iteration + 1));
      result.metrics.push("conflicts", conflicts_now - prev_conflicts);
      prev_colored = colored;
      prev_conflicts = conflicts_now;
      return colored < n;
    });

    result.elapsed_ms = watch.elapsed_ms();
    result.iterations = stats.iterations;
    result.kernel_launches = device.launch_count() - launches_before;
    result.conflicts_resolved = conflicts.load(std::memory_order_relaxed);
    result.num_colors = count_colors(result.colors);
    return result;
  }

  stats = enactor.enact([&](std::int32_t iteration) {
    const obs::ScopedPhase phase("gunrock_hash::round");
    round_iteration = iteration;
    gr::compute(device, frontier, propose_op, avg_degree);
    gr::compute(device, frontier, conflict_op, avg_degree);

    // Bitmap modes fuse hash generation, the frontier rebuild AND the
    // stop-check count into one word-owner filter_bits launch (survivor =
    // still uncolored); the sparse path pays a compute plus a count_if.
    std::int64_t colored;
    if (bitmap) {
      gr::Frontier next = gr::filter_bits(device, frontier,
                                          std::move(spare_words), survive_op,
                                          avg_degree);
      spare_words = frontier.release_words();
      frontier = std::move(next);
      colored = n - frontier.size();
    } else {
      gr::compute(device, frontier, hashgen_op, avg_degree);
      colored = sim::count_if<std::int32_t>(
          device, result.colors,
          [](std::int32_t c) { return c != kUncolored; });
    }
    const std::int64_t conflicts_now =
        conflicts.load(std::memory_order_relaxed);
    result.metrics.push("frontier", n - prev_colored);
    result.metrics.push("colored", colored);
    result.metrics.push("colors_opened", 2 * (iteration + 1));
    result.metrics.push("conflicts", conflicts_now - prev_conflicts);
    prev_colored = colored;
    prev_conflicts = conflicts_now;
    return colored < n;
  });

  result.elapsed_ms = watch.elapsed_ms();
  result.iterations = stats.iterations;
  result.kernel_launches = device.launch_count() - launches_before;
  result.conflicts_resolved = conflicts.load(std::memory_order_relaxed);
  result.num_colors = count_colors(result.colors);
  return result;
}

}  // namespace gcol::color
