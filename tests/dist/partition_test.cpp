#include "dist/partition.hpp"

#include <gtest/gtest.h>

#include "../testing/fixtures.hpp"
#include "graph/generators/grid.hpp"

namespace gcol::dist {
namespace {

TEST(Partition, BlocksCoverAllVerticesContiguously) {
  const Partition p = make_block_partition(10, 3);
  EXPECT_EQ(p.block_begin(0), 0);
  EXPECT_EQ(p.block_end(2), 10);
  vid_t total = 0;
  for (rank_t r = 0; r < 3; ++r) {
    EXPECT_EQ(p.block_begin(r), r == 0 ? 0 : p.block_end(r - 1));
    total += p.block_size(r);
  }
  EXPECT_EQ(total, 10);
}

TEST(Partition, BlocksAreNearEqual) {
  const Partition p = make_block_partition(1000, 7);
  for (rank_t r = 0; r < 7; ++r) {
    EXPECT_NEAR(static_cast<double>(p.block_size(r)), 1000.0 / 7.0, 1.0);
  }
}

TEST(Partition, OwnerConsistentWithBlocks) {
  const Partition p = make_block_partition(997, 5);  // prime: uneven blocks
  for (vid_t v = 0; v < 997; ++v) {
    const rank_t r = p.owner(v);
    EXPECT_GE(v, p.block_begin(r));
    EXPECT_LT(v, p.block_end(r));
  }
}

TEST(Partition, SingleRankOwnsEverything) {
  const Partition p = make_block_partition(50, 1);
  for (vid_t v = 0; v < 50; ++v) EXPECT_EQ(p.owner(v), 0);
}

TEST(Partition, MoreRanksThanVerticesStillValid) {
  const Partition p = make_block_partition(3, 8);
  vid_t total = 0;
  for (rank_t r = 0; r < 8; ++r) total += p.block_size(r);
  EXPECT_EQ(total, 3);
}

TEST(Classify, InteriorAndBoundarySplit) {
  // A 1D path split in half: only the cut endpoints are boundary.
  const auto csr = gcol::testing::path_graph(10);
  const Partition p = make_block_partition(10, 2);
  const RankTopology left = classify_rank(csr, p, 0);
  const RankTopology right = classify_rank(csr, p, 1);
  ASSERT_EQ(left.boundary.size(), 1u);
  EXPECT_EQ(left.boundary[0], 4);
  EXPECT_EQ(left.interior.size(), 4u);
  ASSERT_EQ(right.boundary.size(), 1u);
  EXPECT_EQ(right.boundary[0], 5);
  EXPECT_EQ(left.neighbor_ranks, (std::vector<rank_t>{1}));
  EXPECT_EQ(right.neighbor_ranks, (std::vector<rank_t>{0}));
}

TEST(Classify, GridCutProportions) {
  // A row-major 16x16 grid cut into 4 blocks of 4 rows: each block has 2
  // boundary rows (1 for the end blocks).
  const auto csr = graph::build_csr(graph::generate_grid2d(16, 16));
  const Partition p = make_block_partition(256, 4);
  const RankTopology first = classify_rank(csr, p, 0);
  const RankTopology middle = classify_rank(csr, p, 1);
  EXPECT_EQ(first.boundary.size(), 16u);
  EXPECT_EQ(middle.boundary.size(), 32u);
  EXPECT_EQ(first.interior.size(), 48u);
  EXPECT_EQ(middle.neighbor_ranks.size(), 2u);
}

TEST(Classify, IsolatedVerticesAreInterior) {
  const auto csr = gcol::testing::empty_graph(8);
  const Partition p = make_block_partition(8, 2);
  const RankTopology topology = classify_rank(csr, p, 0);
  EXPECT_TRUE(topology.boundary.empty());
  EXPECT_EQ(topology.interior.size(), 4u);
  EXPECT_TRUE(topology.neighbor_ranks.empty());
}

}  // namespace
}  // namespace gcol::dist
