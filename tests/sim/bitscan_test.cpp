#include "sim/bitscan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/bitops.hpp"
#include "sim/device.hpp"

namespace gcol::sim {
namespace {

TEST(Bitops, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(128), 2u);
}

TEST(Bitops, VisitSetBitsExtractsAscending) {
  std::vector<std::int64_t> seen;
  visit_set_bits((std::uint64_t{1} << 0) | (std::uint64_t{1} << 7) |
                     (std::uint64_t{1} << 63),
                 128, [&](std::int64_t bit) { seen.push_back(bit); });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{128, 135, 191}));
  visit_set_bits(0, 0, [&](std::int64_t) { FAIL() << "zero word visited"; });
}

class BitscanTest : public ::testing::TestWithParam<unsigned> {
 protected:
  Device device{GetParam()};
};

TEST_P(BitscanTest, VisitsExactlyTheSetBits) {
  // Deterministic pseudo-random pattern across several words, including a
  // zero word that must be skipped.
  std::vector<std::uint64_t> words(5, 0);
  std::vector<int> expected(5 * 64, 0);
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (int v = 0; v < 5 * 64; ++v) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    if (v >= 64 && v < 128) continue;  // words[1] stays zero
    if ((state >> 60) & 1) {
      words[static_cast<std::size_t>(v / 64)] |= std::uint64_t{1} << (v % 64);
      expected[static_cast<std::size_t>(v)] = 1;
    }
  }
  std::vector<std::atomic<int>> hits(5 * 64);
  for_each_set_bit(device, "test::scan", words,
                   [&](std::int64_t bit) {
                     hits[static_cast<std::size_t>(bit)].fetch_add(1);
                   });
  for (int v = 0; v < 5 * 64; ++v) {
    EXPECT_EQ(hits[static_cast<std::size_t>(v)].load(),
              expected[static_cast<std::size_t>(v)])
        << "bit " << v;
  }
}

TEST_P(BitscanTest, SingleWorkerTraversalIsAscending) {
  if (device.num_workers() != 1) GTEST_SKIP();
  std::vector<std::uint64_t> words(3, 0);
  for (const int v : {5, 63, 64, 130}) {
    words[static_cast<std::size_t>(v / 64)] |= std::uint64_t{1} << (v % 64);
  }
  std::vector<std::int64_t> order;
  for_each_set_bit(device, "test::ascending", words,
                   [&](std::int64_t bit) { order.push_back(bit); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{5, 63, 64, 130}));
}

TEST_P(BitscanTest, CountsOneLaunchOverWordsAndSkipsEmptySpans) {
  std::vector<std::uint64_t> words(4, 1);
  device.reset_launch_count();
  for_each_set_bit(device, "test::one_launch", words, [](std::int64_t) {});
  EXPECT_EQ(device.launch_count(), 1u);
  // An empty span launches nothing: no work, no synchronization.
  for_each_set_bit(device, "test::none", std::span<const std::uint64_t>{},
                   [](std::int64_t) {});
  for_each_set_bit_slotted(device, "test::none_slotted",
                           std::span<const std::uint64_t>{},
                           [](unsigned, std::int64_t) {});
  EXPECT_EQ(device.launch_count(), 1u);
}

TEST_P(BitscanTest, SlottedVariantCoversBitsWithValidSlots) {
  std::vector<std::uint64_t> words(6, 0);
  for (int v = 0; v < 6 * 64; v += 3) {
    words[static_cast<std::size_t>(v / 64)] |= std::uint64_t{1} << (v % 64);
  }
  std::vector<std::atomic<int>> hits(6 * 64);
  const unsigned workers = device.num_workers();
  for_each_set_bit_slotted(device, "test::slotted", words,
                           [&](unsigned slot, std::int64_t bit) {
                             EXPECT_LT(slot, workers);
                             hits[static_cast<std::size_t>(bit)].fetch_add(1);
                           });
  for (int v = 0; v < 6 * 64; ++v) {
    EXPECT_EQ(hits[static_cast<std::size_t>(v)].load(), v % 3 == 0 ? 1 : 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, BitscanTest, ::testing::Values(1u, 2u, 4u));

}  // namespace
}  // namespace gcol::sim
