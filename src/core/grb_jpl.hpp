#pragma once
// GraphBLAS Jones-Plassmann coloring — the paper's Algorithm 4
// (`GraphBLAST/Color_JPL`). The independent set is selected as in Algorithm
// 2, but instead of opening a new color every round, the helper computes the
// minimum color not used by any colored neighbor of the frontier and colors
// the whole frontier with it — enabling color reuse across rounds.
//
// The minimum-available-color search is the part that "could not be done
// within the confines of the GraphBLAS API" (§IV-A3): neighbor colors are
// scattered into a possible-colors array with the GxB_scatter extension,
// compared against an ascending ramp, and min-reduced.

#include "core/result.hpp"
#include "graph/csr.hpp"

namespace gcol::color {

using GrbJplOptions = Options;

[[nodiscard]] Coloring grb_jpl_color(const graph::Csr& csr,
                                     const GrbJplOptions& options = {});

}  // namespace gcol::color
