// Launch-graph replay equivalence suite (DESIGN.md §3i): for every
// registered algorithm, Options::graph_replay must be a pure execution-mode
// switch — capture-once/replay-per-iteration may elide barriers and skip
// per-launch dispatch setup, but the coloring contract cannot move. The
// binary runs under whatever GCOL_THREADS the harness sets;
// tests/CMakeLists.txt registers it at 1 worker (serial record-order replay
// is bit-identical to eager execution, so colors AND per-kernel launch
// counts must match byte-for-byte for every algorithm) and 4 workers (real
// concurrency; algorithms whose replayed intervals fuse racing kernels —
// the async-JP regime — and the raced proposal/resolution algorithms are
// verify-only, mirroring the frontier-mode suite's exclusions). The TSan CI
// job runs both, so the fused intervals' relaxed-atomic snapshot traffic is
// race-checked under replay.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/registry.hpp"
#include "core/verify.hpp"
#include "graph/build.hpp"
#include "graph/generators/erdos_renyi.hpp"
#include "graph/generators/rgg.hpp"
#include "graph/generators/rmat.hpp"
#include "gunrock/frontier.hpp"
#include "sim/device.hpp"

namespace gcol::color {
namespace {

enum class Family { kErdosRenyi, kRmat, kRgg };

const char* family_name(Family family) {
  switch (family) {
    case Family::kErdosRenyi: return "Gnm";
    case Family::kRmat: return "Rmat";
    case Family::kRgg: return "Rgg";
  }
  return "Unknown";
}

graph::Csr make_graph(Family family) {
  switch (family) {
    case Family::kErdosRenyi:
      // Sparse: long shrinking-frontier tails, the regime replay targets.
      return graph::build_csr(graph::generate_erdos_renyi(600, 3000, 42));
    case Family::kRmat:
      // Power-law: skewed degrees push the AR push/pull fallback boundary,
      // so both the replayed pull graphs and the eager push fallback run.
      return graph::build_csr(graph::generate_rmat(9, 8, {.seed = 5}));
    case Family::kRgg:
      return graph::build_csr(graph::generate_rgg(9, {.seed = 7}));
  }
  return {};
}

Coloring run(const AlgorithmSpec& spec, const graph::Csr& csr, bool replay) {
  Options options;
  options.seed = 99;
  options.graph_replay = replay;
  return spec.run(csr, options);
}

/// Algorithms whose replayed graphs FUSE kernels that race on shared color
/// state: the elided barrier turns the BSP round into its asynchronous
/// variant (proper colors, but palette sweeps may observe neighbors colored
/// later in the same interval), so bitwise identity with the eager BSP run
/// only holds when one worker serializes the interval. The raced
/// proposal/resolution algorithms are excluded for the frontier-mode
/// suite's reason: they are nondeterministic at width > 1 even eagerly.
bool replay_async_on_multiworker(const std::string& name) {
  if (sim::Device::instance().num_workers() <= 1) return false;
  return name == "jp_random" || name == "jp_ldf" || name == "jp_sdl" ||
         name == "jp_hybrid" || name == "gunrock_hash" ||
         name == "gm_speculative";
}

/// The GraphBLAS replay paths substitute the eager round tails (grb::reduce
/// pair + masked-assign write_back/count pairs) with a fused mirror+count
/// launch plus recorded in-place nodes — colors are identical (the replayed
/// stores are per-index independent and the algorithms deterministic) but
/// the launch decomposition deliberately differs, so launch-count equality
/// is not part of their contract (DESIGN.md §3i, fallback policy).
bool launch_structure_differs(const std::string& name) {
  return name == "grb_jpl" || name == "grb_jpl_pure" || name == "grb_is" ||
         name == "grb_mis";
}

using Param = std::tuple<std::string, Family>;

class GraphReplayTest : public ::testing::TestWithParam<Param> {};

TEST_P(GraphReplayTest, ReplayMatchesEager) {
  const auto& [algorithm_name, family] = GetParam();
  const AlgorithmSpec* spec = find_algorithm(algorithm_name);
  ASSERT_NE(spec, nullptr);
  const graph::Csr csr = make_graph(family);

  const Coloring replayed = run(*spec, csr, true);
  ASSERT_EQ(replayed.colors.size(),
            static_cast<std::size_t>(csr.num_vertices));
  const auto violation = find_violation(csr, replayed.colors);
  EXPECT_FALSE(violation.has_value())
      << algorithm_name << " (replay) on " << family_name(family)
      << ": violation at vertex " << (violation ? violation->vertex : -1);
  EXPECT_EQ(replayed.num_colors, count_colors(replayed.colors));

  if (replay_async_on_multiworker(algorithm_name)) {
    GTEST_SKIP() << "fused-interval async regime on multi-worker device: "
                    "verify-only";
  }
  const Coloring eager = run(*spec, csr, false);
  EXPECT_EQ(replayed.colors, eager.colors)
      << algorithm_name << " replay diverged from eager execution on "
      << family_name(family);
  EXPECT_EQ(replayed.num_colors, eager.num_colors);
  EXPECT_EQ(replayed.iterations, eager.iterations);
  if (!launch_structure_differs(algorithm_name)) {
    // Replay advances the launch counter once per NODE, so the paper's
    // global-sync proxy (kernel_launches by name) is mode-invariant; only
    // barrier_intervals — reported via telemetry — shrinks.
    EXPECT_EQ(replayed.kernel_launches, eager.kernel_launches)
        << algorithm_name << " launch accounting moved under replay on "
        << family_name(family);
  }
}

std::vector<Param> make_params() {
  std::vector<Param> params;
  const Family families[] = {Family::kErdosRenyi, Family::kRmat,
                             Family::kRgg};
  for (const AlgorithmSpec& spec : all_algorithms()) {
    for (const Family family : families) {
      params.emplace_back(spec.name, family);
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsReplay, GraphReplayTest, ::testing::ValuesIn(make_params()),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      // No structured bindings here: the macro would split on their commas.
      return std::get<0>(param_info.param) + "_" +
             family_name(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace gcol::color
