file(REMOVE_RECURSE
  "CMakeFiles/color_mtx.dir/color_mtx.cpp.o"
  "CMakeFiles/color_mtx.dir/color_mtx.cpp.o.d"
  "color_mtx"
  "color_mtx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/color_mtx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
