// Distributed-memory coloring study (paper §II-B background, reproduced on
// the simulated BSP substrate): how colors, supersteps, messages and
// conflicts evolve with rank count for the Bozdağ speculative framework and
// distributed Jones-Plassmann, plus the batch-size speculation tradeoff.

#include <cstdio>
#include <string>

#include "common/bench_util.hpp"
#include "core/greedy.hpp"
#include "core/verify.hpp"
#include "dist/coloring.hpp"
#include "graph/datasets.hpp"

namespace {

using namespace gcol;

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  std::printf("== Distributed coloring on the BSP substrate (scale=%.3f) "
              "==\n\n",
              args.scale);

  for (const char* dataset : {"G3_circuit", "thermal2"}) {
    // Use the UNSHUFFLED analogue: a contiguous block partition of its
    // natural row-major order is exactly the small-boundary layout a mesh
    // partitioner (METIS et al.) would hand a real distributed run. The
    // shuffled labels other benches use would make every vertex a boundary
    // vertex — a pathological partition, not the regime Bozdag et al.
    // target.
    const graph::Csr csr = graph::find_dataset(dataset)->make(args.scale);
    const std::int32_t sequential =
        color::greedy_color(csr, {}).num_colors;
    std::printf("-- %s (V=%d, E=%lld; sequential greedy: %d colors) --\n",
                dataset, csr.num_vertices,
                static_cast<long long>(csr.num_undirected_edges()),
                sequential);
    bench::TablePrinter table({"algorithm", "ranks", "colors", "supersteps",
                               "messages", "conflicts", "ms"},
                              args.csv);
    for (const dist::rank_t ranks : {1, 2, 4, 8, 16, 32}) {
      dist::DistOptions options;
      options.num_ranks = ranks;
      options.seed = args.seed;
      for (const bool jp : {false, true}) {
        const dist::DistColoring result =
            jp ? dist::dist_jp_color(csr, options)
               : dist::bozdag_color(csr, options);
        if (!color::is_valid_coloring(csr, result.colors)) {
          std::fprintf(stderr, "INVALID distributed coloring\n");
          return 1;
        }
        table.add_row({jp ? "dist_jp" : "bozdag", std::to_string(ranks),
                       std::to_string(result.num_colors),
                       std::to_string(result.bsp.supersteps),
                       std::to_string(result.bsp.messages),
                       std::to_string(result.conflicts_resolved),
                       bench::fmt(result.elapsed_ms)});
      }
    }
    table.print();
    std::printf("\n");
  }

  // Batch-size tradeoff: smaller speculative batches = fewer conflicts,
  // more supersteps (the knob Bozdag et al. tune).
  const graph::Csr csr = graph::find_dataset("G3_circuit")->make(args.scale);
  std::printf("-- batch-size tradeoff (G3_circuit analogue, 8 ranks) --\n");
  bench::TablePrinter table(
      {"batch", "colors", "supersteps", "messages", "conflicts"}, args.csv);
  for (const vid_t batch : {0, 4096, 1024, 256, 64}) {
    dist::DistOptions options;
    options.num_ranks = 8;
    options.batch_size = batch;
    options.seed = args.seed;
    const dist::DistColoring result = dist::bozdag_color(csr, options);
    table.add_row({batch == 0 ? "all" : std::to_string(batch),
                   std::to_string(result.num_colors),
                   std::to_string(result.bsp.supersteps),
                   std::to_string(result.bsp.messages),
                   std::to_string(result.conflicts_resolved)});
  }
  table.print();
  return 0;
}
