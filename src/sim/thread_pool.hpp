#pragma once
// Persistent worker pool used by the virtual-GPU device (see device.hpp).
//
// The pool models a GPU's resident thread blocks: a fixed set of workers that
// are woken for every kernel launch and joined at an implicit global barrier
// when the launch completes. Work distribution inside a launch is the
// caller's business (device.hpp offers static blocking and dynamic chunking).

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gcol::sim {

/// A fixed-size pool of worker threads that repeatedly execute "jobs".
///
/// A job is a callable invoked once per worker slot with the slot id in
/// [0, size()). run() blocks until every slot has finished — the same
/// semantics as a CUDA kernel launch followed by cudaDeviceSynchronize().
/// Slot 0 executes on the calling thread so a 1-worker pool degenerates to
/// plain serial execution with no synchronization overhead.
class ThreadPool {
 public:
  /// Creates `num_threads` worker slots. Values < 1 are clamped to 1.
  /// Slot 0 is the caller's thread; only `num_threads - 1` OS threads spawn.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker slots (including the caller's slot 0).
  [[nodiscard]] unsigned size() const noexcept { return num_slots_; }

  /// Executes job(slot) once for every slot in [0, size()), blocking until
  /// all slots complete. Exceptions thrown by any slot are captured; the
  /// first one is rethrown on the calling thread after the barrier.
  /// Not reentrant: run() must not be called from inside a job.
  void run(const std::function<void(unsigned)>& job);

 private:
  void worker_loop(unsigned slot);

  unsigned num_slots_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned outstanding_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace gcol::sim
