#pragma once
// 1D block partitioning of a CSR graph across simulated ranks, with the
// boundary/interior vertex classification the distributed coloring
// literature (Bozdağ et al., §II-B) is built on: interior vertices have all
// neighbors on the same rank and can be colored with zero communication;
// boundary vertices need ghost-color exchange.

#include <vector>

#include "dist/bsp.hpp"
#include "graph/csr.hpp"

namespace gcol::dist {

struct Partition {
  rank_t num_ranks = 1;
  vid_t num_vertices = 0;
  /// first_vertex[r] .. first_vertex[r+1] is rank r's contiguous block.
  std::vector<vid_t> first_vertex;

  [[nodiscard]] rank_t owner(vid_t v) const noexcept {
    // Blocks are near-equal; locate with a division then adjust (exact for
    // the block layout built below).
    rank_t r = static_cast<rank_t>(
        (static_cast<std::int64_t>(v) * num_ranks) / num_vertices);
    while (v < first_vertex[static_cast<std::size_t>(r)]) --r;
    while (v >= first_vertex[static_cast<std::size_t>(r) + 1]) ++r;
    return r;
  }

  [[nodiscard]] vid_t block_begin(rank_t r) const noexcept {
    return first_vertex[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] vid_t block_end(rank_t r) const noexcept {
    return first_vertex[static_cast<std::size_t>(r) + 1];
  }
  [[nodiscard]] vid_t block_size(rank_t r) const noexcept {
    return block_end(r) - block_begin(r);
  }
};

/// Near-equal contiguous blocks (the standard 1D layout).
[[nodiscard]] inline Partition make_block_partition(vid_t num_vertices,
                                                    rank_t num_ranks) {
  if (num_ranks < 1) num_ranks = 1;
  Partition p;
  p.num_ranks = num_ranks;
  p.num_vertices = num_vertices;
  p.first_vertex.resize(static_cast<std::size_t>(num_ranks) + 1);
  for (rank_t r = 0; r <= num_ranks; ++r) {
    p.first_vertex[static_cast<std::size_t>(r)] = static_cast<vid_t>(
        (static_cast<std::int64_t>(num_vertices) * r) / num_ranks);
  }
  return p;
}

/// Per-rank structural summary used by the distributed algorithms.
struct RankTopology {
  std::vector<vid_t> boundary;  ///< local vertices with off-rank neighbors
  std::vector<vid_t> interior;  ///< local vertices with only local neighbors
  /// Ranks owning at least one neighbor of a local boundary vertex.
  std::vector<rank_t> neighbor_ranks;
};

[[nodiscard]] inline RankTopology classify_rank(const graph::Csr& csr,
                                                const Partition& partition,
                                                rank_t rank) {
  RankTopology topology;
  std::vector<bool> touches(static_cast<std::size_t>(partition.num_ranks),
                            false);
  for (vid_t v = partition.block_begin(rank); v < partition.block_end(rank);
       ++v) {
    bool is_boundary = false;
    for (const vid_t u : csr.neighbors(v)) {
      const rank_t other = partition.owner(u);
      if (other != rank) {
        is_boundary = true;
        touches[static_cast<std::size_t>(other)] = true;
      }
    }
    (is_boundary ? topology.boundary : topology.interior).push_back(v);
  }
  for (rank_t r = 0; r < partition.num_ranks; ++r) {
    if (touches[static_cast<std::size_t>(r)]) {
      topology.neighbor_ranks.push_back(r);
    }
  }
  return topology;
}

}  // namespace gcol::dist
