#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace gcol::obs {

namespace {

void append_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

Json& Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  values_.push_back(std::move(value));
  return *this;
}

Json& Json::set(std::string_view key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) {
      values_[i] = std::move(value);
      return *this;
    }
  }
  keys_.emplace_back(key);
  values_.push_back(std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return &values_[i];
  }
  return nullptr;
}

const Json* Json::at(std::size_t index) const {
  if (type_ != Type::kArray || index >= values_.size()) return nullptr;
  return &values_[index];
}

std::string Json::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kInt: {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%lld",
                    static_cast<long long>(int_));
      out += buffer;
      return;
    }
    case Type::kDouble: {
      // JSON has no NaN/Inf; emit null so consumers never see invalid text.
      if (!std::isfinite(double_)) {
        out += "null";
        return;
      }
      char buffer[40];
      std::snprintf(buffer, sizeof(buffer), "%.12g", double_);
      out += buffer;
      return;
    }
    case Type::kString:
      out.push_back('"');
      out += escape(string_);
      out.push_back('"');
      return;
    case Type::kArray: {
      if (values_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < values_.size(); ++i) {
        if (i != 0) out.push_back(',');
        append_indent(out, indent, depth + 1);
        values_[i].dump_to(out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      if (values_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < values_.size(); ++i) {
        if (i != 0) out.push_back(',');
        append_indent(out, indent, depth + 1);
        out.push_back('"');
        out += escape(keys_[i]);
        out += indent < 0 ? "\":" : "\": ";
        values_[i].dump_to(out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool write_json_file(const std::string& path, const Json& document,
                     int indent) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string text = document.dump(indent);
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), file) == text.size() &&
      std::fputc('\n', file) != EOF;
  const bool closed = std::fclose(file) == 0;
  return wrote && closed;
}

}  // namespace gcol::obs
