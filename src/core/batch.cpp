#include "core/batch.hpp"

#include <algorithm>
#include <exception>

namespace gcol::color {

Batch::Batch(sim::Device& device, unsigned num_streams) : device_(device) {
  const unsigned workers = device.num_workers();
  const unsigned count =
      num_streams != 0 ? num_streams : std::clamp(workers / 4u, 1u, 8u);
  const unsigned width = std::max(1u, workers / count);
  streams_.reserve(count);
  for (unsigned s = 0; s < count; ++s) {
    streams_.push_back(std::make_unique<sim::Stream>(device_, width));
  }
}

Batch::~Batch() = default;

std::vector<Coloring> Batch::run(const AlgorithmSpec& spec,
                                 const std::vector<BatchItem>& items) {
  std::vector<Coloring> results(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    sim::Stream& stream = *streams_[i % streams_.size()];
    const BatchItem item = items[i];
    Coloring* out = &results[i];
    // The task runs on the stream's thread under its execution context, so
    // every device call inside the algorithm — launches, scratch, launch
    // counter, scoped metrics — resolves to this stream's lane.
    stream.submit([&spec, item, out] { *out = spec.run(*item.graph, item.options); });
  }
  std::exception_ptr first_error;
  for (const auto& stream : streams_) {
    try {
      stream->synchronize();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return results;
}

std::vector<Coloring> Batch::run(const AlgorithmSpec& spec,
                                 const std::vector<const graph::Csr*>& graphs,
                                 const Options& options) {
  std::vector<BatchItem> items;
  items.reserve(graphs.size());
  for (const graph::Csr* graph : graphs) items.push_back({graph, options});
  return run(spec, items);
}

}  // namespace gcol::color
