#include "core/grb_mis.hpp"

#include "core/grb_common.hpp"
#include "core/verify.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/timer.hpp"

namespace gcol::color {

namespace {

using detail::Weight;

/// Algorithm 3 inner loop: grows `mis` to a maximal independent set of the
/// subgraph induced by cand's nonzero entries. `cand` is consumed.
void mis_inner(const grb::Matrix<Weight>& a, grb::Vector<Weight>& cand,
               grb::Vector<Weight>& mis, grb::Vector<Weight>& max,
               grb::Vector<Weight>& frontier, grb::Vector<Weight>& nbr) {
  grb::assign(mis, nullptr, Weight{0});
  for (;;) {
    // Find max of remaining candidates' neighbors, masked to candidates
    // (Alg. 3 l.6). The temporary must be cleared: masked writes leave
    // stale entries from the previous round otherwise.
    max.clear();
    grb::vxm(max, &cand, grb::max_times_semiring<Weight>(), cand, a);
    // New members: candidates beating all candidate neighbors (l.8).
    grb::eWiseAdd(frontier, nullptr, grb::Greater{}, cand, max);
    detail::booleanize(frontier);
    // Stop when no new members joined (l.14-17).
    Weight succ = 0;
    grb::reduce(&succ, grb::plus_monoid<Weight>(), frontier);
    if (succ == 0) break;
    // Add members to the set; drop them from the candidates (l.10-12).
    grb::assign(mis, &frontier, Weight{1});
    grb::assign(cand, &frontier, Weight{0});
    // Remove the new members' neighbors from the candidates (l.19-20).
    nbr.clear();
    grb::vxm(nbr, &cand, grb::boolean_semiring<Weight>(), frontier, a);
    grb::assign(cand, &nbr, Weight{0});
  }
}

}  // namespace

Coloring grb_mis_color(const graph::Csr& csr, const GrbMisOptions& options) {
  const auto n = static_cast<grb::Index>(csr.num_vertices);

  Coloring result;
  result.algorithm = "grb_mis";
  result.colors.assign(static_cast<std::size_t>(n), kUncolored);
  if (n == 0) return result;

  auto& device = sim::Device::instance();
  const obs::ScopedDeviceMetrics scoped(device, result.metrics);
  const grb::Matrix<Weight> a(csr);
  grb::Vector<std::int32_t> c(n);
  grb::Vector<Weight> weight(n), cand(n), mis(n), max(n), frontier(n), nbr(n);

  const sim::Stopwatch watch;
  const std::uint64_t launches_before = device.launch_count();

  grb::assign(c, nullptr, std::int32_t{0});
  detail::set_random_weights(weight, options);

  std::int64_t colored_total = 0;
  for (std::int32_t color = 1; color <= options.max_iterations; ++color) {
    const obs::ScopedPhase phase("grb_mis::round");
    // Inner loop operates on a copy: knocked-out neighbors must stay
    // colorable in later outer rounds.
    cand = weight;
    mis_inner(a, cand, mis, max, frontier, nbr);
    // The MIS is empty only when no uncolored vertices remain. Summing the
    // 0/1 set vector gives the emptiness test and the set size in one pass.
    Weight size = 0;
    grb::reduce(&size, grb::plus_monoid<Weight>(), mis);
    if (size == 0) break;
    result.metrics.push("frontier", n - colored_total);
    colored_total += static_cast<std::int64_t>(size);
    result.metrics.push("colored", colored_total);
    result.metrics.push("colors_opened", color);
    grb::assign(c, &mis, color);
    grb::assign(weight, &mis, Weight{0});
    ++result.iterations;
  }

  result.elapsed_ms = watch.elapsed_ms();
  result.kernel_launches = device.launch_count() - launches_before;

  const auto cv = c.dense_values();
  device.launch("grb_mis::export_colors", n, [&](std::int64_t i) {
    const std::int32_t paper_color = cv[static_cast<std::size_t>(i)];
    result.colors[static_cast<std::size_t>(i)] =
        paper_color == 0 ? kUncolored : paper_color - 1;
  });
  result.num_colors = count_colors(result.colors);
  return result;
}

}  // namespace gcol::color
