// Unit tests for the launch-graph capture/replay subsystem (DESIGN.md §3i):
// capture semantics (record-don't-execute), the dependency/elision legality
// rules on hand-built graphs with known disjoint and overlapping footprints,
// replay correctness and listener accounting, the shape-keyed GraphCache,
// and — as a regression pin — stream identity / slot telemetry stamping on
// the kInlineLaunchItems inline-execution path and on replayed intervals.

#include "sim/launch_graph.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/device.hpp"
#include "sim/footprint.hpp"
#include "sim/stream.hpp"

namespace gcol::sim {
namespace {

/// Captures every LaunchInfo (with a copy of the head-node telemetry) for
/// later assertions. Installed context-scoped, so no synchronization needed.
class RecordingListener final : public LaunchListener {
 public:
  struct Record {
    std::string name;
    std::int64_t items = 0;
    unsigned slots = 0;
    unsigned stream = 0;
    bool graphed = false;
    bool interval_head = false;
    unsigned graph_id = 0;
    unsigned graph_node = 0;
    bool has_telemetry = false;
    std::int64_t slot0_items = 0;
    unsigned slot0_stream = 0;
    Traffic traffic{};
  };

  void on_kernel_launch(const LaunchInfo& info) override {
    Record r;
    r.name = info.name;
    r.items = info.items;
    r.slots = info.slots;
    r.stream = info.stream;
    r.graphed = info.graphed;
    r.interval_head = info.interval_head;
    r.graph_id = info.graph_id;
    r.graph_node = info.graph_node;
    r.traffic = info.traffic;
    if (info.slot_telemetry != nullptr) {
      r.has_telemetry = true;
      r.slot0_items = info.slot_telemetry[0].items;
      r.slot0_stream = info.slot_telemetry[0].stream;
    }
    records.push_back(r);
  }

  std::vector<Record> records;
};

constexpr std::int64_t kN = 256;
constexpr std::int64_t kBytes = kN * static_cast<std::int64_t>(sizeof(int));

/// Records `graph` on `device` as `count` static range nodes over buffers
/// described by `footprints` (one per node); bodies are no-ops — these
/// graphs exist to probe the elision pass, not to compute.
void capture_nodes(Device& device, LaunchGraph& graph,
                   const std::vector<Footprint>& footprints,
                   Schedule schedule = Schedule::kStatic) {
  device.begin_capture(graph);
  for (const Footprint& fp : footprints) {
    device.capture_footprint(fp);
    device.launch("test::node", kN, [](std::int64_t) {}, schedule);
  }
  device.end_capture();
  graph.finalize();
}

TEST(LaunchGraphCapture, RecordsInsteadOfExecuting) {
  Device device(2);
  LaunchGraph graph;
  int runs = 0;
  device.reset_launch_count();
  device.begin_capture(graph);
  EXPECT_TRUE(device.capturing());
  device.launch("test::captured", 100, [&](std::int64_t) { ++runs; });
  device.launch_slots("test::slots", [&](unsigned, unsigned) { ++runs; });
  device.host_pass("test::host", [&] { ++runs; });
  device.end_capture();
  EXPECT_FALSE(device.capturing());
  EXPECT_EQ(runs, 0);                       // nothing executed
  EXPECT_EQ(device.launch_count(), 0u);     // capture doesn't count launches
  EXPECT_EQ(graph.node_count(), 3u);
  EXPECT_EQ(graph.replay_count(), 0u);
}

TEST(LaunchGraphElision, DisjointExclusiveWritesShareOneInterval) {
  Device device(2);
  std::vector<int> a(kN), b(kN);
  LaunchGraph graph;
  capture_nodes(device, graph,
                {Footprint{}.writes(a.data(), kBytes),
                 Footprint{}.writes(b.data(), kBytes)});
  EXPECT_EQ(graph.node_count(), 2u);
  EXPECT_EQ(graph.interval_count(), 1u);  // disjoint buffers: fused
  EXPECT_EQ(graph.interval_of(0), graph.interval_of(1));
}

TEST(LaunchGraphElision, OverlappingExclusiveWriteSplitsIntervals) {
  Device device(2);
  std::vector<int> a(kN);
  LaunchGraph graph;
  capture_nodes(device, graph,
                {Footprint{}.writes(a.data(), kBytes),
                 Footprint{}.reads(a.data(), kBytes)});
  EXPECT_EQ(graph.interval_count(), 2u);  // exclusive write -> read: barrier
}

TEST(LaunchGraphElision, ReadReadOverlapFuses) {
  Device device(2);
  std::vector<int> a(kN);
  LaunchGraph graph;
  capture_nodes(device, graph,
                {Footprint{}.reads(a.data(), kBytes),
                 Footprint{}.reads(a.data(), kBytes)});
  EXPECT_EQ(graph.interval_count(), 1u);
}

TEST(LaunchGraphElision, AlignedSameDomainWriteFeedingReadFuses) {
  Device device(2);
  std::vector<int> a(kN);
  LaunchGraph graph;
  // Static partition of the same kN-item domain on both sides: replay runs
  // interval nodes in order within each slot, so the dependence is honored
  // without a barrier.
  capture_nodes(device, graph,
                {Footprint{}.writes_aligned(a.data(), kBytes, kN),
                 Footprint{}.reads_aligned(a.data(), kBytes, kN)});
  EXPECT_EQ(graph.interval_count(), 1u);
}

TEST(LaunchGraphElision, AlignedDifferentDomainSplits) {
  Device device(2);
  std::vector<int> a(kN);
  LaunchGraph graph;
  capture_nodes(device, graph,
                {Footprint{}.writes_aligned(a.data(), kBytes, kN),
                 Footprint{}.reads_aligned(a.data(), kBytes, kN / 2)});
  EXPECT_EQ(graph.interval_count(), 2u);  // partitions disagree: barrier
}

TEST(LaunchGraphElision, DynamicScheduleInvalidatesAlignedClaim) {
  Device device(2);
  std::vector<int> a(kN);
  LaunchGraph graph;
  // Same aligned declaration as the fusing case, but dynamic chunks land on
  // whichever slot asks first — no stable partition, so no elision.
  capture_nodes(device, graph,
                {Footprint{}.writes_aligned(a.data(), kBytes, kN),
                 Footprint{}.reads_aligned(a.data(), kBytes, kN)},
                Schedule::kDynamic);
  EXPECT_EQ(graph.interval_count(), 2u);
}

TEST(LaunchGraphElision, AlignedClaimOnMismatchedGridSplits) {
  Device device(2);
  std::vector<int> a(kN);
  LaunchGraph graph;
  device.begin_capture(graph);
  device.capture_footprint(Footprint{}.writes_aligned(a.data(), kBytes, kN));
  device.launch("test::writer", kN, [](std::int64_t) {});
  device.capture_footprint(Footprint{}.reads_aligned(a.data(), kBytes, kN));
  // Grid of kN/2 items cannot be partition-aligned to a kN-item domain.
  device.launch("test::reader", kN / 2, [](std::int64_t) {});
  device.end_capture();
  graph.finalize();
  EXPECT_EQ(graph.interval_count(), 2u);
}

TEST(LaunchGraphElision, RelaxedReadToleratesOverlappingWrite) {
  Device device(2);
  std::vector<int> a(kN);
  LaunchGraph graph;
  capture_nodes(device, graph,
                {Footprint{}.writes(a.data(), kBytes),
                 Footprint{}.reads_relaxed(a.data(), kBytes)});
  EXPECT_EQ(graph.interval_count(), 1u);  // declared benign race
}

TEST(LaunchGraphElision, EmptyFootprintIsConservative) {
  Device device(2);
  std::vector<int> a(kN), b(kN);
  LaunchGraph graph;
  device.begin_capture(graph);
  device.capture_footprint(Footprint{}.writes(a.data(), kBytes));
  device.launch("test::declared", kN, [](std::int64_t) {});
  // No footprint declared: unknown accesses, own barrier interval.
  device.launch("test::undeclared", kN, [](std::int64_t) {});
  device.capture_footprint(Footprint{}.writes(b.data(), kBytes));
  device.launch("test::declared2", kN, [](std::int64_t) {});
  device.end_capture();
  graph.finalize();
  EXPECT_EQ(graph.interval_count(), 3u);
}

TEST(LaunchGraphElision, ScratchLaneWriteConflicts) {
  Device device(2);
  std::vector<int> a(kN), b(kN);
  LaunchGraph graph;
  capture_nodes(
      device, graph,
      {Footprint{}.writes(a.data(), kBytes).writes_lane(ScratchLane::kPartials),
       Footprint{}.reads(b.data(), kBytes).reads_lane(ScratchLane::kPartials)});
  EXPECT_EQ(graph.interval_count(), 2u);  // lanes are one re-typeable block
}

TEST(LaunchGraphElision, HostNodeNeverClaimsAlignment) {
  Device device(2);
  std::vector<int> a(kN);
  LaunchGraph graph;
  device.begin_capture(graph);
  device.capture_footprint(Footprint{}.writes_aligned(a.data(), kBytes, kN));
  device.launch("test::writer", kN, [](std::int64_t) {});
  device.capture_footprint(Footprint{}.reads_aligned(a.data(), kBytes, kN));
  device.host_pass("test::host_reader", [] {});
  device.end_capture();
  graph.finalize();
  EXPECT_EQ(graph.interval_count(), 2u);  // host runs on slot 0 only
}

/// Replay of a two-node aligned pipeline (fill then double, one interval)
/// computes the same result as eager execution, across repeated replays.
TEST(LaunchGraphReplay, FusedPipelineComputesCorrectly) {
  Device device(4);
  std::vector<int> a(kN, 0), b(kN, 0);
  int* pa = a.data();
  int* pb = b.data();
  LaunchGraph graph;
  device.begin_capture(graph);
  device.capture_footprint(Footprint{}.writes_aligned(pa, kBytes, kN));
  device.launch("test::fill", kN, [pa](std::int64_t i) {
    pa[static_cast<std::size_t>(i)] = static_cast<int>(i);
  });
  device.capture_footprint(Footprint{}
                               .reads_aligned(pa, kBytes, kN)
                               .writes_aligned(pb, kBytes, kN));
  device.launch("test::double", kN, [pa, pb](std::int64_t i) {
    pb[static_cast<std::size_t>(i)] = 2 * pa[static_cast<std::size_t>(i)];
  });
  device.end_capture();
  graph.finalize();
  EXPECT_EQ(graph.interval_count(), 1u);

  for (int replay = 0; replay < 3; ++replay) {
    std::fill(a.begin(), a.end(), 0);
    std::fill(b.begin(), b.end(), 0);
    device.replay(graph);
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(a[static_cast<std::size_t>(i)], static_cast<int>(i));
      ASSERT_EQ(b[static_cast<std::size_t>(i)], static_cast<int>(2 * i));
    }
  }
  EXPECT_EQ(graph.replay_count(), 3u);
}

TEST(LaunchGraphReplay, DynamicNodeCoversRangeOnEveryReplay) {
  Device device(4);
  std::vector<std::atomic<int>> hits(kN);
  auto* ph = hits.data();
  LaunchGraph graph;
  device.begin_capture(graph);
  device.launch(
      "test::dyn", kN,
      [ph](std::int64_t i) { ph[i].fetch_add(1, std::memory_order_relaxed); },
      Schedule::kDynamic, 7);
  device.end_capture();
  // The shared chunk cursor must reset between replays.
  device.replay(graph);
  device.replay(graph);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 2);
}

TEST(LaunchGraphReplay, LaunchCountAdvancesByNodeCount) {
  Device device(2);
  std::vector<int> a(kN), b(kN);
  LaunchGraph graph;
  capture_nodes(device, graph,
                {Footprint{}.writes(a.data(), kBytes),
                 Footprint{}.writes(b.data(), kBytes)});
  device.reset_launch_count();
  device.replay(graph);
  EXPECT_EQ(device.launch_count(), 2u);  // per NODE, matching eager counts
  device.replay(graph);
  EXPECT_EQ(device.launch_count(), 4u);
}

TEST(LaunchGraphReplay, ListenerSeesEveryNodeWithGraphIdentity) {
  Device device(4);
  std::vector<int> a(kN), b(kN);
  LaunchGraph graph;
  capture_nodes(device, graph,
                {Footprint{}.writes(a.data(), kBytes),
                 Footprint{}.writes(b.data(), kBytes)});
  ASSERT_EQ(graph.interval_count(), 1u);

  RecordingListener listener;
  device.set_launch_listener(&listener);
  device.replay(graph);
  device.set_launch_listener(nullptr);

  ASSERT_EQ(listener.records.size(), 2u);
  const auto& head = listener.records[0];
  const auto& tail = listener.records[1];
  EXPECT_TRUE(head.graphed);
  EXPECT_TRUE(head.interval_head);
  EXPECT_EQ(head.graph_id, graph.id());
  EXPECT_EQ(head.graph_node, 0u);
  EXPECT_TRUE(head.has_telemetry);  // interval telemetry rides the head
  EXPECT_EQ(head.items, kN);
  EXPECT_TRUE(tail.graphed);
  EXPECT_FALSE(tail.interval_head);  // fused: no second barrier, no stamp
  EXPECT_EQ(tail.graph_node, 1u);
  EXPECT_FALSE(tail.has_telemetry);
  // Per-kernel names/items match what eager launches would have reported.
  EXPECT_EQ(head.name, "test::node");
  EXPECT_EQ(tail.items, kN);
}

TEST(LaunchGraphReplay, SingleWorkerReplayIsSerialRecordOrder) {
  Device device(1);
  std::vector<std::int64_t> order;
  auto* po = &order;
  LaunchGraph graph;
  device.begin_capture(graph);
  device.capture_footprint(Footprint{}.writes(po, 1));
  device.launch("test::first", 8,
                [po](std::int64_t i) { po->push_back(i); });
  device.capture_footprint(Footprint{}.writes(po, 1));
  device.launch("test::second", 8,
                [po](std::int64_t i) { po->push_back(100 + i); });
  device.end_capture();
  device.replay(graph);
  // Byte-identical to eager: strictly ascending within each node, nodes in
  // record order (this is what makes replay-on vs replay-off colors equal
  // at GCOL_THREADS=1 for every algorithm).
  ASSERT_EQ(order.size(), 16u);
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(order[static_cast<std::size_t>(8 + i)], 100 + i);
  }
}

TEST(LaunchGraphReplay, SlotKernelRunsEverySlot) {
  Device device(3);
  std::vector<int> marks(3, 0);
  auto* pm = marks.data();
  LaunchGraph graph;
  device.begin_capture(graph);
  device.launch_slots("test::slots", [pm](unsigned slot, unsigned) {
    pm[slot] = 1;
  });
  device.end_capture();
  device.replay(graph);
  for (const int m : marks) EXPECT_EQ(m, 1);
}

TEST(LaunchGraphReplay, EmptyGraphIsANoOp) {
  Device device(2);
  LaunchGraph graph;
  device.reset_launch_count();
  device.replay(graph);
  EXPECT_EQ(device.launch_count(), 0u);
  EXPECT_EQ(graph.interval_count(), 0u);
}

TEST(GraphCache, KeyedFindAndEmplace) {
  GraphCache cache;
  EXPECT_EQ(cache.find(0), nullptr);
  LaunchGraph& g0 = cache.emplace(0);
  LaunchGraph& g2 = cache.emplace(2);
  EXPECT_EQ(cache.find(0), &g0);
  EXPECT_EQ(cache.find(2), &g2);
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(g0.id(), g2.id());
}

// ---------------------------------------------------------------------------
// Inline-path stream attribution (regression pin). Grids at or below
// kInlineLaunchItems execute inline on the launching thread; the observed
// inline path must still stamp slot 0's {items, stream} telemetry and the
// LaunchInfo stream id, or tiny tail-iteration launches vanish from
// per-stream kernel attribution. The stream-mask threading has handled this
// since the multi-stream executor PR — these tests pin it against
// regression (an earlier draft of the inline fast path skipped the stamp).
// ---------------------------------------------------------------------------

TEST(InlineLaunchTelemetry, DefaultContextStampsSlotZero) {
  Device device(4);
  RecordingListener listener;
  device.set_launch_listener(&listener);
  device.launch("test::tiny", kInlineLaunchItems, [](std::int64_t) {},
                Schedule::kStatic, 0, nullptr, Traffic{8, 4});
  device.set_launch_listener(nullptr);

  ASSERT_EQ(listener.records.size(), 1u);
  const auto& r = listener.records[0];
  EXPECT_EQ(r.slots, 1u);  // inline: one slot regardless of device width
  ASSERT_TRUE(r.has_telemetry);
  EXPECT_EQ(r.slot0_items, kInlineLaunchItems);
  EXPECT_EQ(r.slot0_stream, 0u);  // default context
  EXPECT_EQ(r.stream, 0u);
  EXPECT_EQ(r.traffic.bytes_read, 8 * kInlineLaunchItems);
  EXPECT_EQ(r.traffic.bytes_written, 4 * kInlineLaunchItems);
}

TEST(InlineLaunchTelemetry, StreamLaunchStampsStreamId) {
  Device device(4);
  RecordingListener listener;
  Stream stream(device, 2);
  // The metrics listener is context-scoped: install it from the stream's
  // thread so the stream's launches notify it.
  stream.submit([&] { device.set_launch_listener(&listener); });
  stream.launch("test::tiny_stream", 4, [](std::int64_t) {});
  stream.submit([&] { device.set_launch_listener(nullptr); });
  stream.synchronize();

  ASSERT_EQ(listener.records.size(), 1u);
  const auto& r = listener.records[0];
  EXPECT_EQ(r.slots, 1u);
  EXPECT_EQ(r.stream, stream.id());  // inline launches carry stream identity
  ASSERT_TRUE(r.has_telemetry);
  EXPECT_EQ(r.slot0_stream, stream.id());
  EXPECT_EQ(r.slot0_items, 4);
}

TEST(InlineLaunchTelemetry, ReplayedIntervalStampsStreamOnHead) {
  Device device(4);
  std::vector<int> a(8, 0);
  int* pa = a.data();
  LaunchGraph graph;
  device.begin_capture(graph);
  device.launch("test::tiny_graphed", 8, [pa](std::int64_t i) {
    pa[static_cast<std::size_t>(i)] = 1;
  });
  device.end_capture();

  RecordingListener listener;
  device.set_launch_listener(&listener);
  device.replay(graph);
  device.set_launch_listener(nullptr);

  ASSERT_EQ(listener.records.size(), 1u);
  const auto& r = listener.records[0];
  EXPECT_TRUE(r.graphed);
  EXPECT_TRUE(r.interval_head);
  ASSERT_TRUE(r.has_telemetry);
  EXPECT_EQ(r.slot0_stream, 0u);
  EXPECT_EQ(r.slot0_items, 8);
  for (const int v : a) EXPECT_EQ(v, 1);
}

}  // namespace
}  // namespace gcol::sim
