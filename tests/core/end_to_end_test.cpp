// End-to-end pipeline tests: Matrix Market file on disk -> loader ->
// registry algorithm -> verifier -> post-pass, exercising the same path the
// color_mtx CLI and a downstream user would.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/gcol.hpp"
#include "graph/generators/rgg.hpp"

namespace gcol {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("gcol_e2e_" + std::to_string(::getpid()) + ".mtx");
    // Write a generated graph out through the library's own writer.
    const graph::Csr csr =
        graph::build_csr(graph::generate_rgg(8, {.seed = 77}));
    std::ofstream out(path_);
    ASSERT_TRUE(out.good());
    graph::write_matrix_market(out, csr);
    reference_ = csr;
  }

  void TearDown() override {
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
  }

  std::filesystem::path path_;
  graph::Csr reference_;
};

TEST_F(EndToEndTest, LoadRoundTripsExactly) {
  const graph::Csr loaded = graph::load_matrix_market(path_.string());
  EXPECT_EQ(loaded.row_offsets, reference_.row_offsets);
  EXPECT_EQ(loaded.col_indices, reference_.col_indices);
}

TEST_F(EndToEndTest, EveryRegistryAlgorithmColorsTheLoadedFile) {
  const graph::Csr loaded = graph::load_matrix_market(path_.string());
  for (const color::AlgorithmSpec& spec : color::all_algorithms()) {
    const color::Coloring result = spec.run(loaded, color::Options{});
    EXPECT_TRUE(color::is_valid_coloring(loaded, result.colors))
        << spec.name;
  }
}

TEST_F(EndToEndTest, FullPipelineWithPostPass) {
  const graph::Csr loaded = graph::load_matrix_market(path_.string());
  const color::AlgorithmSpec* spec = color::find_algorithm("gunrock_is");
  ASSERT_NE(spec, nullptr);
  const color::Coloring base = spec->run(loaded, color::Options{});
  const color::Coloring improved =
      color::iterated_greedy_recolor(loaded, base);
  const color::Coloring balanced = color::balance_colors(loaded, improved);
  EXPECT_TRUE(color::is_valid_coloring(loaded, balanced.colors));
  EXPECT_LE(improved.num_colors, base.num_colors);
  EXPECT_LE(balanced.num_colors, improved.num_colors);
  EXPECT_LE(color::class_imbalance(balanced.colors),
            color::class_imbalance(improved.colors) + 1e-9);
}

TEST_F(EndToEndTest, DatasetLoaderPrefersRealFileViaEnv) {
  // GCOL_DATA_DIR pointing at our temp dir with a matching name must win
  // over the synthetic analogue.
  const std::filesystem::path dir = path_.parent_path();
  const std::filesystem::path named = dir / "offshore.mtx";
  std::filesystem::copy_file(
      path_, named, std::filesystem::copy_options::overwrite_existing);
  ::setenv("GCOL_DATA_DIR", dir.string().c_str(), 1);
  const graph::Csr loaded =
      graph::build_dataset(*graph::find_dataset("offshore"), 0.5);
  ::unsetenv("GCOL_DATA_DIR");
  std::error_code ignored;
  std::filesystem::remove(named, ignored);
  EXPECT_EQ(loaded.num_vertices, reference_.num_vertices);
  EXPECT_EQ(loaded.col_indices, reference_.col_indices);
}

}  // namespace
}  // namespace gcol
