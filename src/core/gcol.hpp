#pragma once
// Umbrella header for the gcol graph-coloring library: include this to get
// the full public API (graphs, generators, all coloring algorithms,
// verification, and the algorithm registry).

#include "core/batch.hpp"            // IWYU pragma: export
#include "core/distance2.hpp"        // IWYU pragma: export
#include "core/dsatur.hpp"           // IWYU pragma: export
#include "core/gm_speculative.hpp"   // IWYU pragma: export
#include "core/greedy.hpp"           // IWYU pragma: export
#include "core/grb_is.hpp"           // IWYU pragma: export
#include "core/grb_jpl.hpp"          // IWYU pragma: export
#include "core/grb_mis.hpp"          // IWYU pragma: export
#include "core/gunrock_ar.hpp"       // IWYU pragma: export
#include "core/gunrock_hash.hpp"     // IWYU pragma: export
#include "core/gunrock_is.hpp"       // IWYU pragma: export
#include "core/jones_plassmann.hpp"  // IWYU pragma: export
#include "core/naumov.hpp"           // IWYU pragma: export
#include "core/ordering.hpp"         // IWYU pragma: export
#include "core/recolor.hpp"          // IWYU pragma: export
#include "core/registry.hpp"         // IWYU pragma: export
#include "core/result.hpp"           // IWYU pragma: export
#include "core/verify.hpp"           // IWYU pragma: export
#include "graph/build.hpp"           // IWYU pragma: export
#include "graph/csr.hpp"             // IWYU pragma: export
#include "graph/datasets.hpp"        // IWYU pragma: export
#include "graph/mmio.hpp"            // IWYU pragma: export
#include "graph/stats.hpp"           // IWYU pragma: export
