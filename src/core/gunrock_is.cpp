#include "core/gunrock_is.hpp"

#include <atomic>
#include <vector>

#include "core/verify.hpp"
#include "gunrock/enactor.hpp"
#include "gunrock/frontier.hpp"
#include "gunrock/operators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/atomics.hpp"
#include "sim/launch_graph.hpp"
#include "sim/rng.hpp"
#include "sim/timer.hpp"

namespace gcol::color {

namespace {

/// Priority comparison with vertex-id tie break. The paper compares raw
/// random ints; the tie break guarantees termination on (astronomically
/// unlikely, but possible) equal draws without changing the distribution.
inline bool priority_less(std::int32_t ra, vid_t a, std::int32_t rb,
                          vid_t b) noexcept {
  return ra < rb || (ra == rb && a < b);
}

}  // namespace

Coloring gunrock_is_color(const graph::Csr& csr,
                          const GunrockIsOptions& options) {
  const vid_t n = csr.num_vertices;
  const auto un = static_cast<std::size_t>(n);
  auto& device = sim::Device::instance();

  Coloring result;
  result.algorithm = options.min_max ? "gunrock_is_minmax"
                     : options.use_atomics ? "gunrock_is_atomics"
                                           : "gunrock_is";
  result.colors.assign(un, kUncolored);
  if (n == 0) return result;
  const obs::ScopedDeviceMetrics scoped(device, result.metrics);

  // Initialize R <- generateRandomNumbers (Algorithm 5 line 7). The bitmap
  // modes skip the materialization launch and draw the same counter-based
  // values on the fly — the draw is a pure function of (seed, original id),
  // so every access sees exactly the number the array would hold, and the
  // same logical vertex draws the same number under every reorder strategy.
  const bool bitmap = options.frontier_mode != gr::FrontierMode::kSparse;
  std::vector<std::int32_t> random;
  const sim::CounterRng rng(options.seed);
  if (!bitmap) {
    random.resize(un);
    device.launch("gunrock_is::init_random", n, [&](std::int64_t v) {
      random[static_cast<std::size_t>(v)] = rng.uniform_int31(
          static_cast<std::uint64_t>(options.original_id(
              static_cast<vid_t>(v))));
    });
  }
  const auto rand_of = [&](vid_t v) {
    return bitmap ? rng.uniform_int31(
                        static_cast<std::uint64_t>(options.original_id(v)))
                  : random[static_cast<std::size_t>(v)];
  };
  // Ties (equal draws) break on original ids too, keeping the whole
  // priority a function of the logical vertex.
  const auto tie_of = [&](vid_t v) { return options.original_id(v); };

  std::int32_t* colors = result.colors.data();
  gr::Frontier frontier = bitmap
                              ? gr::Frontier::all_bits(n, options.frontier_mode)
                              : gr::Frontier::all(n);
  std::vector<std::uint64_t> spare_words;  // bitmap double buffer
  const double avg_degree = csr.average_degree();
  std::atomic<std::int64_t> colored_total{0};
  std::int64_t prev_colored = 0;

  // ColorOp (Algorithm 5 lines 15-43): one thread per vertex, serial
  // neighbor loop — deliberately NOT load balanced. The round's color base
  // rides in a host-written cell so the SAME closure serves the eager path
  // and the captured replay graph.
  std::int32_t round_color = 0;  // 2 * iteration, set at each round's start
  const auto color_op = [&](vid_t v) {
    const auto uv = static_cast<std::size_t>(v);
    if (colors[uv] != kUncolored) return;  // already colored
    const std::int32_t color = round_color;
    bool colormax = true;
    bool colormin = options.min_max;
    const std::int32_t rv = rand_of(v);
    for (const vid_t u : csr.neighbors(v)) {
      const auto uu = static_cast<std::size_t>(u);
      // Skip neighbors finalized in earlier iterations; neighbors that
      // (racily) took color+1/color+2 this round still participate in the
      // comparison (Algorithm 5 line 26).
      const std::int32_t cu = sim::atomic_load(colors[uu]);
      if (cu != kUncolored && cu != color + 1 && cu != color + 2) continue;
      const std::int32_t ru = rand_of(u);
      if (!priority_less(ru, tie_of(u), rv, tie_of(v))) colormax = false;
      if (!priority_less(rv, tie_of(v), ru, tie_of(u))) colormin = false;
      if (!colormax && !colormin) break;
    }
    if (colormax) {
      sim::atomic_store(colors[uv], color + 1);
    } else if (colormin) {
      sim::atomic_store(colors[uv], color + 2);
    } else {
      return;
    }
    if (options.use_atomics) {
      colored_total.fetch_add(1, std::memory_order_relaxed);
    }
  };
  const auto survive_op = [&](vid_t v) {
    color_op(v);
    return colors[static_cast<std::size_t>(v)] == kUncolored;
  };

  const sim::Stopwatch watch;
  const std::uint64_t launches_before = device.launch_count();
  gr::Enactor enactor(device, options.max_iterations);
  gr::EnactorStats stats;

  if (options.graph_replay && bitmap) {
    // Launch-graph replay (DESIGN.md §3i): the bitmap round is already ONE
    // fused word-owner launch, so replay saves per-round dispatch rather
    // than barriers (like naumov). The cache keys on ping-pong parity and
    // the occupancy-resolved direction; the color base reaches the recorded
    // body through round_color.
    std::vector<std::uint64_t> words_a = frontier.release_words();
    std::vector<std::uint64_t> words_b(words_a.size(), 0);
    std::vector<std::int64_t> counts(device.num_workers(), 0);
    const auto num_words = static_cast<std::int64_t>(words_a.size());
    const std::int64_t word_bytes = num_words * gr::kWordBytes;
    const std::int64_t color_bytes =
        static_cast<std::int64_t>(un) *
        static_cast<std::int64_t>(sizeof(std::int32_t));
    sim::GraphCache cache;
    std::int64_t size = n;
    bool flipped = false;
    stats = enactor.enact([&](std::int32_t iteration) {
      const obs::ScopedPhase phase("gunrock_is::round");
      round_color = 2 * iteration;
      const std::int64_t active = size;
      const std::uint64_t* in = (flipped ? words_b : words_a).data();
      std::uint64_t* out = (flipped ? words_a : words_b).data();
      const gr::Direction dir =
          gr::resolve_direction(options.frontier_mode, size, n, avg_degree);
      const std::uint64_t key =
          (flipped ? 1u : 0u) | (dir == gr::Direction::kPull ? 2u : 0u);
      sim::LaunchGraph* graph = cache.find(key);
      if (graph == nullptr) {
        graph = &cache.emplace(key);
        device.begin_capture(*graph);
        device.capture_footprint(
            sim::Footprint{}
                .reads(in, word_bytes)
                .reads_relaxed(colors, color_bytes)
                .writes_aligned(colors, color_bytes, num_words)
                .writes(out, word_bytes)
                .writes(counts.data(),
                        static_cast<std::int64_t>(counts.size() *
                                                  sizeof(std::int64_t))));
        gr::filter_bits_recorded(device, in, out, num_words, counts.data(),
                                 dir, survive_op);
        device.end_capture();
      }
      device.replay(*graph);
      size = 0;
      for (const std::int64_t c : counts) size += c;
      flipped = !flipped;
      const std::int64_t colored =
          options.use_atomics ? colored_total.load(std::memory_order_relaxed)
                              : n - size;
      result.metrics.push("frontier", active);
      result.metrics.push("colored", colored);
      result.metrics.push("colors_opened", 2 * (iteration + 1));
      prev_colored = colored;
      return colored < n;
    });

    result.elapsed_ms = watch.elapsed_ms();
    result.iterations = stats.iterations;
    result.kernel_launches = device.launch_count() - launches_before;
    result.num_colors = count_colors(result.colors);
    return result;
  }

  stats = enactor.enact([&](std::int32_t iteration) {
    const obs::ScopedPhase phase("gunrock_is::round");
    round_color = 2 * iteration;

    // Stop when all vertices hold a valid color (Algorithm 5 line 9). The
    // atomics variant reads its in-kernel counter after a plain compute;
    // the no-atomics variants fuse the count into the SAME launch via the
    // per-slot tally (exact: colors[v] is written only by v's own work
    // item). Either way one launch per iteration, and the stop check hands
    // the iteration series its "colored so far" value for free.
    //
    // Bitmap modes keep only the still-uncolored vertices in the frontier:
    // the color attempt AND the frontier rebuild fuse into one word-owner
    // filter_bits launch, and "colored so far" falls out of the bitmap's
    // popcount (the atomics variant still exercises its counter).
    std::int64_t colored;
    if (bitmap) {
      const std::int64_t active = frontier.size();
      gr::Frontier next = gr::filter_bits(device, frontier,
                                          std::move(spare_words), survive_op,
                                          avg_degree);
      spare_words = frontier.release_words();
      frontier = std::move(next);
      colored = options.use_atomics
                    ? colored_total.load(std::memory_order_relaxed)
                    : n - frontier.size();
      result.metrics.push("frontier", active);
    } else if (options.use_atomics) {
      gr::compute(device, frontier, color_op);
      colored = colored_total.load(std::memory_order_relaxed);
      result.metrics.push("frontier", n - prev_colored);
    } else {
      colored = gr::compute_count(device, frontier, color_op, [&](vid_t v) {
        return colors[static_cast<std::size_t>(v)] != kUncolored;
      });
      result.metrics.push("frontier", n - prev_colored);
    }
    result.metrics.push("colored", colored);
    result.metrics.push("colors_opened", 2 * (iteration + 1));
    prev_colored = colored;
    return colored < n;
  });

  result.elapsed_ms = watch.elapsed_ms();
  result.iterations = stats.iterations;
  result.kernel_launches = device.launch_count() - launches_before;
  result.num_colors = count_colors(result.colors);
  return result;
}

}  // namespace gcol::color
