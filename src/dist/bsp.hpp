#pragma once
// Simulated distributed-memory execution — the substrate for the paper's
// §II-B survey material (Bozdağ et al.'s distributed speculative coloring
// framework and the Jones-Plassmann heuristic it is compared against).
//
// We have no cluster, so per the substitution rule the message-passing
// environment is simulated: a bulk-synchronous (BSP/Pregel-style) engine
// where R ranks hold private state, execute a superstep function in
// parallel (on the virtual device), and exchange point-to-point messages
// that are delivered at the next superstep boundary. This preserves what
// the distributed algorithms' behaviour actually depends on — information
// staleness across rounds, message volume, and round counts — without
// pretending to model wire latency.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/device.hpp"

namespace gcol::dist {

using rank_t = std::int32_t;

/// A point-to-point message with an opaque payload type.
template <typename Payload>
struct Message {
  rank_t from = 0;
  Payload payload{};
};

/// Per-rank mailbox interface handed to the superstep function.
template <typename Payload>
class Mailbox {
 public:
  Mailbox(rank_t rank, rank_t size,
          std::vector<Message<Payload>>* inbox,
          std::vector<std::vector<Message<Payload>>>* outboxes)
      : rank_(rank), size_(size), inbox_(inbox), outboxes_(outboxes) {}

  [[nodiscard]] rank_t rank() const noexcept { return rank_; }
  [[nodiscard]] rank_t size() const noexcept { return size_; }

  /// Messages sent to this rank during the PREVIOUS superstep.
  [[nodiscard]] const std::vector<Message<Payload>>& inbox() const noexcept {
    return *inbox_;
  }

  /// Queues a message for delivery at the next superstep boundary.
  void send(rank_t dest, Payload payload) {
    (*outboxes_)[static_cast<std::size_t>(dest)].push_back(
        Message<Payload>{rank_, std::move(payload)});
  }

 private:
  rank_t rank_;
  rank_t size_;
  std::vector<Message<Payload>>* inbox_;
  std::vector<std::vector<Message<Payload>>>* outboxes_;
};

struct BspStats {
  std::int32_t supersteps = 0;
  std::int64_t messages = 0;  ///< total point-to-point messages delivered
};

/// Runs ranks in lockstep supersteps until every rank votes to halt in the
/// same superstep (Pregel semantics: a rank receiving messages still runs).
///
/// `step(rank_state, mailbox, superstep)` returns true to keep running.
/// Ranks execute concurrently on the virtual device within a superstep;
/// cross-rank communication is ONLY via mailboxes, so the simulation is
/// deterministic for any worker count.
template <typename State, typename Payload, typename Step>
BspStats run_bsp(sim::Device& device, std::vector<State>& states, Step step,
                 std::int32_t max_supersteps = 1 << 20) {
  const auto num_ranks = static_cast<rank_t>(states.size());
  const auto unum_ranks = states.size();
  // Double-buffered mailboxes: inboxes hold last superstep's messages,
  // outboxes collect this superstep's sends (one vector per (src, dest)
  // pair so sends need no locking).
  std::vector<std::vector<Message<Payload>>> inboxes(unum_ranks);
  std::vector<std::vector<std::vector<Message<Payload>>>> outboxes(
      unum_ranks, std::vector<std::vector<Message<Payload>>>(unum_ranks));

  BspStats stats;
  std::vector<std::uint8_t> active(unum_ranks, 1);
  for (std::int32_t superstep = 0; superstep < max_supersteps; ++superstep) {
    ++stats.supersteps;
    device.launch("bsp::superstep", num_ranks, [&](std::int64_t r) {
      const auto ur = static_cast<std::size_t>(r);
      Mailbox<Payload> mailbox(static_cast<rank_t>(r), num_ranks,
                               &inboxes[ur], &outboxes[ur]);
      active[ur] = step(states[ur], mailbox, superstep) ? 1 : 0;
    });

    // Superstep boundary: deliver all outboxes into inboxes.
    bool any_message = false;
    for (std::size_t dest = 0; dest < unum_ranks; ++dest) {
      inboxes[dest].clear();
      for (std::size_t src = 0; src < unum_ranks; ++src) {
        auto& queue = outboxes[src][dest];
        if (queue.empty()) continue;
        any_message = true;
        stats.messages += static_cast<std::int64_t>(queue.size());
        inboxes[dest].insert(inboxes[dest].end(),
                             std::make_move_iterator(queue.begin()),
                             std::make_move_iterator(queue.end()));
        queue.clear();
      }
    }

    bool any_active = any_message;
    for (const std::uint8_t a : active) any_active |= (a != 0);
    if (!any_active) break;
  }
  return stats;
}

}  // namespace gcol::dist
