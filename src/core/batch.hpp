#pragma once
// Batched multi-graph coloring over device streams. A Batch owns a small
// fleet of sim::Streams — each with its own worker lane, scratch arena and
// launch counter — and round-robins N independent coloring problems across
// them, so the colorings execute concurrently on disjoint slices of the
// worker pool instead of time-slicing the whole pool one graph at a time.
// This is the host-side pattern the paper's setting implies for coloring
// many small/medium graphs (one cuSPARSE/Gunrock call per graph, streams for
// overlap): per-graph kernel launches are cheap, so the win comes from
// keeping every SM busy while any one graph is in a narrow tail iteration.
//
// Determinism: every registered algorithm is seed-deterministic for a fixed
// worker-slot count EXCEPT the intentionally racy speculative variants
// (gunrock_hash, gm_speculative — see tests/core/frontier_mode_test.cpp).
// A stream's lane width generally differs from the full pool's width, but
// algorithm results are width-independent (width only affects scratch sizing
// and scheduling), so batched colorings are byte-identical to single-graph
// runs of the same options — the property tests/core/batch_test.cpp pins.
//
// Errors: a failing coloring does not abort its siblings; run() completes
// every graph it can, then rethrows the first captured error.

#include <memory>
#include <vector>

#include "core/registry.hpp"
#include "core/result.hpp"
#include "graph/csr.hpp"
#include "sim/stream.hpp"

namespace gcol::color {

/// One coloring problem inside a batch.
struct BatchItem {
  const graph::Csr* graph = nullptr;  ///< must outlive the run() call
  Options options;
};

class Batch {
 public:
  /// Creates `num_streams` streams on `device`, each as wide as an even
  /// split of the device's workers allows. `num_streams == 0` picks a
  /// default: one stream per four workers, clamped to [1, 8] — wide enough
  /// lanes that per-graph kernels still parallelize, enough streams that
  /// tail iterations overlap. Streams (and their leased lanes) live for the
  /// Batch's lifetime, so back-to-back run() calls reuse warm scratch.
  explicit Batch(sim::Device& device, unsigned num_streams = 0);
  ~Batch();

  Batch(const Batch&) = delete;
  Batch& operator=(const Batch&) = delete;

  [[nodiscard]] unsigned num_streams() const noexcept {
    return static_cast<unsigned>(streams_.size());
  }
  /// Worker slots per stream lane (streams may degrade to narrower lanes
  /// when the pool is small; all streams of a batch share one width).
  [[nodiscard]] unsigned stream_width() const noexcept {
    return streams_.front()->width();
  }

  /// Colors every item with `spec`, one coloring per item in item order,
  /// scheduling item i on stream i % num_streams(). Blocks until the whole
  /// batch completes; rethrows the first error after all streams drain.
  /// `spec` and every item's graph must outlive the call (trivially true —
  /// the call blocks).
  std::vector<Coloring> run(const AlgorithmSpec& spec,
                            const std::vector<BatchItem>& items);

  /// Convenience: the same options for every graph.
  std::vector<Coloring> run(const AlgorithmSpec& spec,
                            const std::vector<const graph::Csr*>& graphs,
                            const Options& options = {});

 private:
  sim::Device& device_;
  std::vector<std::unique_ptr<sim::Stream>> streams_;
};

}  // namespace gcol::color
