#include "graph/generators/grid.hpp"

#include <limits>
#include <stdexcept>

namespace gcol::graph {

Coo generate_grid2d(vid_t width, vid_t height, Stencil2d stencil) {
  if (width < 0 || height < 0) {
    throw std::invalid_argument("generate_grid2d: negative dimension");
  }
  const std::int64_t w = width;
  const std::int64_t h = height;
  if (w * h > static_cast<std::int64_t>(std::numeric_limits<vid_t>::max())) {
    throw std::invalid_argument("generate_grid2d: grid too large");
  }
  Coo coo;
  coo.num_vertices = static_cast<vid_t>(w * h);
  const bool diagonals = stencil == Stencil2d::kNinePoint;
  // Each vertex emits only "forward" edges so every undirected edge appears
  // once; build_csr symmetrizes.
  coo.reserve(static_cast<std::size_t>(w * h) * (diagonals ? 4u : 2u));
  auto id = [w](std::int64_t i, std::int64_t j) {
    return static_cast<vid_t>(j * w + i);
  };
  for (std::int64_t j = 0; j < h; ++j) {
    for (std::int64_t i = 0; i < w; ++i) {
      const vid_t v = id(i, j);
      if (i + 1 < w) coo.add_edge(v, id(i + 1, j));
      if (j + 1 < h) coo.add_edge(v, id(i, j + 1));
      if (diagonals) {
        if (i + 1 < w && j + 1 < h) coo.add_edge(v, id(i + 1, j + 1));
        if (i > 0 && j + 1 < h) coo.add_edge(v, id(i - 1, j + 1));
      }
    }
  }
  return coo;
}

Coo generate_grid3d(vid_t width, vid_t height, vid_t depth,
                    Stencil3d stencil) {
  if (width < 0 || height < 0 || depth < 0) {
    throw std::invalid_argument("generate_grid3d: negative dimension");
  }
  const std::int64_t w = width;
  const std::int64_t h = height;
  const std::int64_t d = depth;
  if (w * h * d > static_cast<std::int64_t>(std::numeric_limits<vid_t>::max())) {
    throw std::invalid_argument("generate_grid3d: grid too large");
  }
  Coo coo;
  coo.num_vertices = static_cast<vid_t>(w * h * d);
  const bool full = stencil == Stencil3d::kTwentySevenPoint;
  coo.reserve(static_cast<std::size_t>(w * h * d) * (full ? 13u : 3u));
  auto id = [w, h](std::int64_t i, std::int64_t j, std::int64_t k) {
    return static_cast<vid_t>((k * h + j) * w + i);
  };
  for (std::int64_t k = 0; k < d; ++k) {
    for (std::int64_t j = 0; j < h; ++j) {
      for (std::int64_t i = 0; i < w; ++i) {
        const vid_t v = id(i, j, k);
        if (!full) {
          if (i + 1 < w) coo.add_edge(v, id(i + 1, j, k));
          if (j + 1 < h) coo.add_edge(v, id(i, j + 1, k));
          if (k + 1 < d) coo.add_edge(v, id(i, j, k + 1));
          continue;
        }
        // All 13 lexicographically-forward offsets of the 3x3x3 cube.
        for (std::int64_t dk = 0; dk <= 1; ++dk) {
          for (std::int64_t dj = -1; dj <= 1; ++dj) {
            for (std::int64_t di = -1; di <= 1; ++di) {
              if (dk == 0 && (dj < 0 || (dj == 0 && di <= 0))) continue;
              const std::int64_t ni = i + di;
              const std::int64_t nj = j + dj;
              const std::int64_t nk = k + dk;
              if (ni < 0 || ni >= w || nj < 0 || nj >= h || nk >= d) continue;
              coo.add_edge(v, id(ni, nj, nk));
            }
          }
        }
      }
    }
  }
  return coo;
}

}  // namespace gcol::graph
