// Paper-claim regression tests: the qualitative relationships the paper's
// evaluation reports (Figures 1-3, Table II) must hold on mid-size mesh
// analogues. These are the machine-independent claims — color counts and
// iteration structure — not wall-clock times.

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/verify.hpp"
#include "graph/build.hpp"
#include "graph/datasets.hpp"
#include "graph/generators/rgg.hpp"

namespace gcol::color {
namespace {

Coloring run(const char* name, const graph::Csr& csr, std::uint64_t seed = 1,
             gr::FrontierMode mode = gr::FrontierMode::kAuto) {
  const AlgorithmSpec* spec = find_algorithm(name);
  EXPECT_NE(spec, nullptr) << name;
  Options options;
  options.seed = seed;
  options.frontier_mode = mode;
  Coloring result = spec->run(csr, options);
  EXPECT_TRUE(is_valid_coloring(csr, result.colors)) << name;
  return result;
}

graph::Csr mesh_graph() {
  return graph::build_csr(graph::generate_rgg(12, {.seed = 99}));
}

TEST(PaperClaims, MisHasFewestColorsOfGraphBlastFamily) {
  // Fig. 1b: "the order of best to worst reverses: maximal independent set,
  // Jones-Plassman and independent set".
  const auto csr = mesh_graph();
  const std::int32_t mis = run("grb_mis", csr).num_colors;
  const std::int32_t jpl = run("grb_jpl", csr).num_colors;
  const std::int32_t is = run("grb_is", csr).num_colors;
  EXPECT_LE(mis, jpl);
  EXPECT_LE(jpl, is);
}

TEST(PaperClaims, MisBeatsNaumovOnColors) {
  // "Compared to Naumov, 1.9x fewer colors are used" (MIS vs Naumov JPL/CC).
  const auto csr = mesh_graph();
  const std::int32_t mis = run("grb_mis", csr).num_colors;
  EXPECT_LT(mis, run("naumov_jpl", csr).num_colors);
  EXPECT_LT(mis, run("naumov_cc", csr).num_colors);
}

TEST(PaperClaims, CcHasWorstQuality) {
  // Fig. 1b: Naumov CC uses the most colors (5.0x vs MIS).
  const auto csr = mesh_graph();
  const std::int32_t cc = run("naumov_cc", csr).num_colors;
  EXPECT_GE(cc, run("naumov_jpl", csr).num_colors);
  EXPECT_GE(cc, run("grb_mis", csr).num_colors);
  // The multiplicative gap should be visible, not marginal.
  EXPECT_GE(static_cast<double>(cc),
            1.3 * static_cast<double>(run("grb_mis", csr).num_colors));
}

TEST(PaperClaims, MisWithinWhiskerOfGreedy) {
  // "1.014x fewer colors than a greedy, sequential algorithm": on meshes the
  // two should be within a couple of colors of each other.
  const auto csr = mesh_graph();
  const std::int32_t mis = run("grb_mis", csr).num_colors;
  const std::int32_t greedy = run("cpu_greedy", csr).num_colors;
  EXPECT_NEAR(static_cast<double>(mis), static_cast<double>(greedy),
              0.15 * static_cast<double>(greedy) + 1.0);
}

TEST(PaperClaims, HashFewerColorsThanGunrockIs) {
  // Fig. 2a: Hash trades runtime for fewer colors than IS.
  const auto csr = mesh_graph();
  EXPECT_LE(run("gunrock_hash", csr).num_colors,
            run("gunrock_is", csr).num_colors);
}

TEST(PaperClaims, GunrockIsColorCountComparableToNaumovJpl) {
  // Fig. 1: Gunrock IS wins runtime "while maintaining a comparable color
  // count" vs Naumov JPL. Comparable = within ~35% on meshes.
  const auto csr = mesh_graph();
  const auto is = static_cast<double>(run("gunrock_is", csr).num_colors);
  const auto jpl = static_cast<double>(run("naumov_jpl", csr).num_colors);
  EXPECT_LT(is, 1.35 * jpl + 2.0);
  EXPECT_GT(is, jpl / 1.35 - 2.0);
}

TEST(PaperClaims, MinMaxHalvesIterationsNotColors) {
  // Table II mechanism: min-max IS halves iterations versus single-set IS
  // while color counts stay in the same band.
  const auto csr = mesh_graph();
  const Coloring minmax = run("gunrock_is", csr);
  const Coloring single = run("gunrock_is_single", csr);
  EXPECT_LE(minmax.iterations, single.iterations / 2 + 1);
  EXPECT_LE(minmax.num_colors, single.num_colors + 4);
}

TEST(PaperClaims, MisCostsMoreLaunchesThanIsAndJpl) {
  // §V-C: MIS's inner loop (second vxm per round) is the runtime cost; the
  // launch counter is our machine-independent proxy for it.
  const auto csr = mesh_graph();
  const auto mis = run("grb_mis", csr).kernel_launches;
  const auto is = run("grb_is", csr).kernel_launches;
  EXPECT_GT(mis, is);
}

TEST(PaperClaims, ArIsTheLaunchHeaviestGunrockVariant) {
  // Table II baseline: AR pays advance + segmented reduce + filter per
  // color; per-iteration launch cost dominates IS and Hash. The claim is
  // about the paper's launch structure, so it is pinned to the sparse-list
  // frontier (the bitmap engine fuses IS down to one launch per round and
  // AR to two, compressing the ratio to exactly 2x).
  const auto csr = mesh_graph();
  const Coloring ar = run("gunrock_ar", csr, 1, gr::FrontierMode::kSparse);
  const Coloring is = run("gunrock_is", csr, 1, gr::FrontierMode::kSparse);
  const double ar_per_iter = static_cast<double>(ar.kernel_launches) /
                             std::max(1, ar.iterations);
  const double is_per_iter = static_cast<double>(is.kernel_launches) /
                             std::max(1, is.iterations);
  EXPECT_GT(ar_per_iter, 2.0 * is_per_iter);

  // The direction-optimized engine keeps AR the launch-heaviest variant
  // even after fusion: 2 launches per round vs IS's single fused launch.
  const Coloring ar_auto = run("gunrock_ar", csr);
  const Coloring is_auto = run("gunrock_is", csr);
  EXPECT_GE(static_cast<double>(ar_auto.kernel_launches) /
                std::max(1, ar_auto.iterations),
            2.0 * static_cast<double>(is_auto.kernel_launches) /
                std::max(1, is_auto.iterations));
}

TEST(PaperClaims, RggColorsGrowSlowlyWithScale) {
  // Fig. 3c/3d: color counts grow roughly with degree ~ ln n, far slower
  // than n. Between scale 9 and 13 (16x more vertices, ~1.45x the average
  // degree), color counts must grow by well under the vertex ratio.
  const auto small = graph::build_csr(graph::generate_rgg(9, {.seed = 1}));
  const auto large = graph::build_csr(graph::generate_rgg(13, {.seed = 1}));
  for (const char* name : {"gunrock_is", "grb_is"}) {
    const auto c_small = run(name, small).num_colors;
    const auto c_large = run(name, large).num_colors;
    EXPECT_LT(c_large, 3 * c_small) << name;
    EXPECT_GE(c_large, c_small) << name;
  }
}

TEST(PaperClaims, DatasetAnaloguesAllColorable) {
  // End-to-end: every Figure 1 dataset analogue colors correctly at the
  // test scale with the headline implementation.
  for (const auto& info : graph::paper_datasets()) {
    const graph::Csr csr = graph::build_dataset(info, 0.01);
    const Coloring result = run("gunrock_is", csr);
    EXPECT_GT(result.num_colors, 0) << info.name;
  }
}

}  // namespace
}  // namespace gcol::color
