// Quickstart: generate a graph, color it with every registered algorithm,
// verify, and print the time/quality summary — the 60-second tour of the
// library's public API.
//
//   ./quickstart                 # default RGG, all algorithms
//   ./quickstart path/to/g.mtx   # your own Matrix Market graph

#include <cstdio>

#include "core/gcol.hpp"
#include "graph/generators/rgg.hpp"

int main(int argc, char** argv) {
  using namespace gcol;

  // 1. Get a graph: load a Matrix Market file or generate a random
  //    geometric graph (the paper's scaling workload).
  graph::Csr csr;
  if (argc > 1) {
    std::printf("loading %s ...\n", argv[1]);
    csr = graph::load_matrix_market(argv[1]);
  } else {
    csr = graph::build_csr(graph::generate_rgg(14, {.seed = 7}));
  }
  const graph::DegreeStats stats = graph::degree_stats(csr);
  std::printf("graph: %d vertices, %lld undirected edges, avg degree %.2f, "
              "max degree %d\n\n",
              csr.num_vertices,
              static_cast<long long>(csr.num_undirected_edges()),
              stats.average_degree, stats.max_degree);

  // 2. Color it with each implementation and verify independently.
  std::printf("%-34s %8s %7s %6s %9s\n", "implementation", "ms", "colors",
              "iters", "launches");
  for (const color::AlgorithmSpec& spec : color::all_algorithms()) {
    color::Options options;
    options.seed = 42;
    const color::Coloring result = spec.run(csr, options);
    const bool ok = color::is_valid_coloring(csr, result.colors);
    std::printf("%-34s %8.2f %7d %6d %9llu %s\n", spec.display_name.c_str(),
                result.elapsed_ms, result.num_colors, result.iterations,
                static_cast<unsigned long long>(result.kernel_launches),
                ok ? "" : "  <-- INVALID");
    if (!ok) return 1;
  }

  // 3. Inspect one coloring in detail: the color-class histogram determines
  //    how much parallelism a downstream consumer gets per class.
  const color::Coloring best = color::grb_mis_color(csr);
  const auto histogram = color::color_histogram(best.colors);
  std::printf("\nGraphBLAST MIS color classes (%zu):", histogram.size());
  for (std::size_t c = 0; c < histogram.size(); ++c) {
    std::printf(" %lld", static_cast<long long>(histogram[c]));
  }
  std::printf("\n");
  return 0;
}
