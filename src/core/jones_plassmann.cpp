#include "core/jones_plassmann.hpp"

#include <cstdint>
#include <vector>

#include "core/ordering.hpp"
#include "core/palette.hpp"
#include "core/verify.hpp"
#include "gunrock/enactor.hpp"
#include "gunrock/frontier.hpp"
#include "gunrock/operators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/atomics.hpp"
#include "sim/launch_graph.hpp"
#include "sim/rng.hpp"
#include "sim/timer.hpp"

namespace gcol::color {

const char* to_string(JpPriority priority) noexcept {
  switch (priority) {
    case JpPriority::kRandom: return "random";
    case JpPriority::kLargestDegreeFirst: return "largest-degree-first";
    case JpPriority::kSmallestDegreeLast: return "smallest-degree-last";
    case JpPriority::kHybridDegreeThenRandom: return "hybrid-che";
  }
  return "unknown";
}

Coloring jones_plassmann_color(const graph::Csr& csr,
                               const JonesPlassmannOptions& options) {
  const vid_t n = csr.num_vertices;
  const auto un = static_cast<std::size_t>(n);
  auto& device = sim::Device::instance();

  Coloring result;
  result.algorithm =
      std::string("jones_plassmann_") + to_string(options.priority);
  result.colors.assign(un, kUncolored);
  if (n == 0) return result;
  const obs::ScopedDeviceMetrics scoped(device, result.metrics);

  // Priorities: a strict total order packed into int64. Higher priority
  // colors earlier; random bits break structural ties. Draws and id
  // tie-breaks key on original ids, so the coloring is invariant to the
  // registry's reorder strategies (only the traversal layout changes).
  std::vector<std::int64_t> priority(un);
  const sim::CounterRng rng(options.seed);
  switch (options.priority) {
    case JpPriority::kRandom:
      device.launch("jp::priority_random", n, [&](std::int64_t v) {
        const vid_t orig = options.original_id(static_cast<vid_t>(v));
        priority[static_cast<std::size_t>(v)] =
            (static_cast<std::int64_t>(
                 rng.uniform_int31(static_cast<std::uint64_t>(orig)))
             << 32) |
            static_cast<std::int64_t>(orig);
      });
      break;
    case JpPriority::kLargestDegreeFirst:
      device.launch("jp::priority_degree", n, [&](std::int64_t v) {
        const vid_t orig = options.original_id(static_cast<vid_t>(v));
        priority[static_cast<std::size_t>(v)] =
            (static_cast<std::int64_t>(csr.degree(static_cast<vid_t>(v)))
             << 32) |
            static_cast<std::int64_t>(
                rng.uniform_int31(static_cast<std::uint64_t>(orig)));
      });
      break;
    case JpPriority::kSmallestDegreeLast: {
      // Degeneracy order: vertices removed later must color earlier.
      const std::vector<vid_t> order = smallest_degree_last_order(csr, options);
      for (vid_t rank = 0; rank < n; ++rank) {
        priority[static_cast<std::size_t>(order[static_cast<std::size_t>(
            rank)])] = static_cast<std::int64_t>(n - rank);
      }
      break;
    }
    case JpPriority::kHybridDegreeThenRandom: {
      // Degree threshold at the requested percentile: heavy vertices rank
      // by degree (colored in the earliest rounds, Che et al.'s load-
      // imbalance fix); everyone else competes on random draws below them.
      const std::vector<vid_t> by_degree = largest_degree_first_order(csr);
      const double fraction =
          options.hybrid_degree_fraction < 0.0
              ? 0.0
              : (options.hybrid_degree_fraction > 1.0
                     ? 1.0
                     : options.hybrid_degree_fraction);
      const auto cutoff_index = static_cast<std::size_t>(
          fraction * static_cast<double>(n));
      const vid_t threshold =
          cutoff_index == 0 || n == 0
              ? csr.max_degree() + 1
              : csr.degree(by_degree[std::min(
                    cutoff_index, static_cast<std::size_t>(n) - 1)]);
      device.launch("jp::priority_hybrid", n, [&](std::int64_t v) {
        const vid_t degree = csr.degree(static_cast<vid_t>(v));
        const vid_t orig = options.original_id(static_cast<vid_t>(v));
        const std::int64_t head =
            degree >= threshold ? static_cast<std::int64_t>(degree) + 1 : 0;
        priority[static_cast<std::size_t>(v)] =
            (head << 48) |
            (static_cast<std::int64_t>(
                 rng.uniform_int31(static_cast<std::uint64_t>(orig)))
             << 17) |
            static_cast<std::int64_t>(orig & 0x1ffff);
      });
      break;
    }
  }

  std::int32_t* colors = result.colors.data();
  // Per-round snapshot: decisions read the PREVIOUS round's colors only, so
  // the result is a deterministic function of (graph, priorities) no matter
  // how workers interleave — the bulk-synchronous JP formulation. The
  // frontier representation (sparse list vs. bitmap) therefore never changes
  // the colors, only the launch structure.
  std::vector<std::int32_t> snapshot(result.colors);
  const bool bitmap = options.frontier_mode != gr::FrontierMode::kSparse;
  gr::Frontier frontier = bitmap
                              ? gr::Frontier::all_bits(n, options.frontier_mode)
                              : gr::Frontier::all(n);
  std::vector<vid_t> spare;                // sparse-list double buffer
  std::vector<std::uint64_t> spare_words;  // bitmap double buffer
  const double avg_degree = csr.average_degree();

  // A vertex colors itself with its minimum available color once no
  // snapshot-uncolored neighbor outranks it. Two adjacent vertices can
  // never color in the same round (one outranks the other in the shared
  // snapshot), so writes to `colors` never race with the reads below.
  // Neighbor snapshot probes are relaxed atomics: eagerly the publish runs
  // a launch later and never races, but the fused replay interval below can
  // publish a neighbor's color while another slot is still probing — the
  // async read its relaxed-read footprint declares. Coherence keeps it
  // proper: once a probe sees a neighbor colored, the palette sweep's later
  // load of the same entry sees that same final color and fits around it.
  const auto color_op = [&](vid_t v) {
    const auto uv = static_cast<std::size_t>(v);
    if (sim::atomic_load(snapshot[uv]) != kUncolored) return;
    const std::int64_t mine = priority[uv];
    const auto adj = csr.neighbors(v);
    for (const vid_t u : adj) {
      if (sim::atomic_load(snapshot[static_cast<std::size_t>(u)]) ==
              kUncolored &&
          priority[static_cast<std::size_t>(u)] > mine) {
        return;
      }
    }
    // Minimum color absent from the colored neighborhood, via the zero-
    // scratch windowed bit palette (a degree-d vertex always first-fits
    // within [0, d], so the sweep stays register-resident).
    colors[uv] = palette::first_fit_windowed(
        static_cast<std::int64_t>(adj.size()), [&](std::int64_t k) {
          return sim::atomic_load(snapshot[static_cast<std::size_t>(
              adj[static_cast<std::size_t>(k)])]);
        });
  };
  // Filter with the snapshot publish fused into its flag pass: only
  // frontier vertices can have changed color this round (everyone else's
  // snapshot entry is already final), so publishing v while flagging it
  // covers the whole graph.
  const auto survive_op = [&](vid_t v) {
    const std::int32_t cv = colors[static_cast<std::size_t>(v)];
    sim::atomic_store(snapshot[static_cast<std::size_t>(v)], cv);
    return cv == kUncolored;
  };

  const sim::Stopwatch watch;
  const std::uint64_t launches_before = device.launch_count();
  gr::Enactor enactor(device, options.max_iterations);
  gr::EnactorStats stats;

  if (options.graph_replay && bitmap) {
    // Launch-graph replay (DESIGN.md §3i): a bitmap round is two fixed-shape
    // word-granular kernels — compute (color decisions against the snapshot)
    // and filter_bits (publish + frontier rebuild). Only two things vary
    // round to round: which ping-pong buffer is the input and the occupancy-
    // resolved direction, so rounds replay from a graph cache keyed on
    // (parity, direction) — at most four graphs per run, captured on first
    // miss. The declared footprints fuse each pair into ONE barrier
    // interval: the filter's snapshot publishes and own-color reads are
    // word-partition-aligned, the compute's neighbor snapshot probes are
    // declared relaxed. Within a slot replay runs compute before filter;
    // across slots a probe may see a neighbor's color published mid-round,
    // which makes the round asynchronous — still a proper coloring (of two
    // adjacent uncolored vertices exactly one outranks the other, and a
    // probe that sees a fresh color first-fits around it; see color_op).
    // At one worker the interval replays serially in record order and the
    // colors are byte-identical to eager execution — what CI's identity
    // gate checks; at higher widths colors may differ run to run, so tests
    // verify properness instead, like the speculative algorithms.
    std::vector<std::uint64_t> words_a = frontier.release_words();
    std::vector<std::uint64_t> words_b(words_a.size(), 0);
    std::vector<std::int64_t> counts(device.num_workers(), 0);
    const auto num_words = static_cast<std::int64_t>(words_a.size());
    const std::int64_t word_bytes = num_words * gr::kWordBytes;
    const std::int64_t color_bytes =
        static_cast<std::int64_t>(un) *
        static_cast<std::int64_t>(sizeof(std::int32_t));
    sim::GraphCache cache;
    std::int64_t size = n;
    bool flipped = false;
    stats = enactor.enact([&](std::int32_t) {
      const obs::ScopedPhase phase("jp::round");
      result.metrics.push("frontier", size);
      const std::uint64_t* in = (flipped ? words_b : words_a).data();
      std::uint64_t* out = (flipped ? words_a : words_b).data();
      const gr::Direction dir =
          gr::resolve_direction(options.frontier_mode, size, n, avg_degree);
      const std::uint64_t key =
          (flipped ? 1u : 0u) | (dir == gr::Direction::kPull ? 2u : 0u);
      sim::LaunchGraph* graph = cache.find(key);
      if (graph == nullptr) {
        graph = &cache.emplace(key);
        device.begin_capture(*graph);
        device.capture_footprint(
            sim::Footprint{}
                .reads(in, word_bytes)
                .reads(priority.data(),
                       static_cast<std::int64_t>(un * sizeof(std::int64_t)))
                .reads_relaxed(snapshot.data(), color_bytes)
                .writes_aligned(colors, color_bytes, num_words));
        gr::compute_bits_recorded(device, in, num_words, dir, color_op);
        device.capture_footprint(
            sim::Footprint{}
                .reads(in, word_bytes)
                .reads_aligned(colors, color_bytes, num_words)
                .writes_aligned(snapshot.data(), color_bytes, num_words)
                .writes(out, word_bytes)
                .writes(counts.data(),
                        static_cast<std::int64_t>(counts.size() *
                                                  sizeof(std::int64_t))));
        gr::filter_bits_recorded(device, in, out, num_words, counts.data(),
                                 dir, survive_op);
        device.end_capture();
      }
      device.replay(*graph);
      size = 0;
      for (const std::int64_t c : counts) size += c;
      flipped = !flipped;
      result.metrics.push("colored", n - size);
      return size > 0;
    });
  } else {
    stats = enactor.enact([&](std::int32_t) {
      const obs::ScopedPhase phase("jp::round");
      result.metrics.push("frontier", frontier.size());
      gr::compute(device, frontier, color_op, avg_degree);

      if (bitmap) {
        // Word-wise frontier rebuild: the compaction the sparse path pays
        // two launches for (flag+count, scatter) is one word-owner pass.
        gr::Frontier next = gr::filter_bits(device, frontier,
                                            std::move(spare_words), survive_op,
                                            avg_degree);
        spare_words = frontier.release_words();
        frontier = std::move(next);
      } else {
        // The survivors compact into the recycled buffer — two launches per
        // round instead of publish + flag + gather.
        gr::Frontier next =
            gr::filter_into(device, frontier, std::move(spare), survive_op);
        spare = frontier.release_vertices();
        frontier = std::move(next);
      }
      result.metrics.push("colored", n - frontier.size());
      return !frontier.is_empty();
    });
  }

  result.elapsed_ms = watch.elapsed_ms();
  result.iterations = stats.iterations;
  result.kernel_launches = device.launch_count() - launches_before;
  result.num_colors = count_colors(result.colors);
  return result;
}

}  // namespace gcol::color
