#pragma once
// Vertex frontiers — the central data structure of Gunrock's data-centric
// abstraction (paper §III-B): "operations on vertex or edge frontiers".
//
// Three representations:
//   - the implicit full vertex set (the common case for the coloring
//     algorithms, which keep all vertices active and early-out on colored
//     ones — Algorithm 5 line 18);
//   - an explicit compacted vertex list produced by filter/advance;
//   - a dense *bitmap*, one bit per vertex in 64-bit words (Gunrock's
//     direction-optimized frontiers; GraphBLAST's dense masks). Rebuilding a
//     bitmap frontier is a word-wise pass — no scan, no scatter — and
//     membership is one bit test, which is what makes pull traversal cheap.
//
// FrontierMode is the representation/direction policy knob carried by the
// frontier itself: operators consult it to decide how to traverse (push =
// iterate set bits, pull = test membership over all vertices, auto = pick
// per launch from frontier occupancy) and which representation to rebuild.

#include <cassert>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/types.hpp"
#include "sim/bitops.hpp"

namespace gcol::gr {

/// Frontier representation / traversal policy (the Table-II ablation knob).
enum class FrontierMode {
  kSparse,      ///< compacted vertex lists, PR 4 behavior (the baseline)
  kBitmapPush,  ///< bitmap, always iterate set bits (word-skipping)
  kBitmapPull,  ///< bitmap, always full-pass membership tests
  kAuto,        ///< bitmap, per-launch occupancy-adaptive push/pull
};

[[nodiscard]] constexpr const char* to_string(FrontierMode mode) noexcept {
  switch (mode) {
    case FrontierMode::kSparse: return "sparse";
    case FrontierMode::kBitmapPush: return "bitmap-push";
    case FrontierMode::kBitmapPull: return "bitmap-pull";
    case FrontierMode::kAuto: return "auto";
  }
  return "?";
}

/// Parses the spelling to_string produces; returns false on no match.
inline bool parse_frontier_mode(std::string_view text, FrontierMode& mode) {
  if (text == "sparse") mode = FrontierMode::kSparse;
  else if (text == "bitmap-push") mode = FrontierMode::kBitmapPush;
  else if (text == "bitmap-pull") mode = FrontierMode::kBitmapPull;
  else if (text == "auto") mode = FrontierMode::kAuto;
  else return false;
  return true;
}

class Frontier {
 public:
  /// The implicit frontier containing every vertex of an n-vertex graph.
  [[nodiscard]] static Frontier all(vid_t num_vertices) {
    Frontier f;
    f.num_vertices_ = num_vertices;
    f.kind_ = Kind::kImplicitAll;
    return f;
  }

  /// An explicit frontier. `vertices` must contain valid ids < num_vertices.
  [[nodiscard]] static Frontier of(std::vector<vid_t> vertices,
                                   vid_t num_vertices) {
    Frontier f;
    f.num_vertices_ = num_vertices;
    f.kind_ = Kind::kList;
    f.vertices_ = std::move(vertices);
    return f;
  }

  /// An empty frontier over an n-vertex graph.
  [[nodiscard]] static Frontier empty(vid_t num_vertices) {
    return of({}, num_vertices);
  }

  /// A full bitmap frontier (every bit set, tail bits of the last word
  /// zero). `mode` records the traversal policy for downstream operators
  /// and must be one of the bitmap modes.
  [[nodiscard]] static Frontier all_bits(vid_t num_vertices,
                                         FrontierMode mode) {
    assert(mode != FrontierMode::kSparse);
    std::vector<std::uint64_t> words(sim::words_for_bits(num_vertices),
                                     sim::kFullWord);
    const std::int64_t tail =
        static_cast<std::int64_t>(num_vertices) % sim::kBitsPerWord;
    if (!words.empty() && tail != 0) {
      words.back() = sim::kFullWord >> (sim::kBitsPerWord - tail);
    }
    return bits(std::move(words), num_vertices, num_vertices, mode);
  }

  /// A bitmap frontier from a word buffer. `count` must equal the popcount
  /// of `words` and bits >= num_vertices must be clear; `words` must hold
  /// exactly words_for_bits(num_vertices) entries.
  [[nodiscard]] static Frontier bits(std::vector<std::uint64_t> words,
                                     std::int64_t count, vid_t num_vertices,
                                     FrontierMode mode) {
    assert(mode != FrontierMode::kSparse);
    assert(words.size() == sim::words_for_bits(num_vertices));
    Frontier f;
    f.num_vertices_ = num_vertices;
    f.kind_ = Kind::kBitmap;
    f.words_ = std::move(words);
    f.count_ = count;
    f.mode_ = mode;
    return f;
  }

  [[nodiscard]] vid_t num_vertices() const noexcept { return num_vertices_; }

  [[nodiscard]] bool is_all() const noexcept {
    return kind_ == Kind::kImplicitAll;
  }

  [[nodiscard]] bool is_bitmap() const noexcept {
    return kind_ == Kind::kBitmap;
  }

  /// Traversal policy knob. kSparse for implicit/list frontiers.
  [[nodiscard]] FrontierMode mode() const noexcept { return mode_; }

  [[nodiscard]] std::int64_t size() const noexcept {
    switch (kind_) {
      case Kind::kImplicitAll: return num_vertices_;
      case Kind::kList: return static_cast<std::int64_t>(vertices_.size());
      case Kind::kBitmap: return count_;
    }
    return 0;
  }

  [[nodiscard]] bool is_empty() const noexcept { return size() == 0; }

  /// The i-th active vertex (implicit / list frontiers only — a bitmap has
  /// no O(1) rank-to-vertex map; traverse it with for_each or the push
  /// schedule instead).
  [[nodiscard]] vid_t vertex(std::int64_t i) const noexcept {
    assert(kind_ != Kind::kBitmap);
    return kind_ == Kind::kImplicitAll ? static_cast<vid_t>(i)
                                       : vertices_[static_cast<std::size_t>(i)];
  }

  /// Membership test: one bit probe on bitmaps, constant-true on implicit
  /// frontiers (list frontiers have no O(1) test and assert).
  [[nodiscard]] bool contains(vid_t v) const noexcept {
    assert(kind_ != Kind::kList);
    return kind_ == Kind::kImplicitAll || sim::test_bit(words_.data(), v);
  }

  /// The bitmap words (bitmap frontiers only).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    assert(kind_ == Kind::kBitmap);
    return words_;
  }

  /// Steals the vertex buffer, leaving the frontier empty — the double-
  /// buffering handshake: a filter loop recycles the outgoing frontier's
  /// allocation as the next compaction's output buffer. Implicit-all
  /// frontiers own no buffer and yield an empty vector.
  [[nodiscard]] std::vector<vid_t> release_vertices() noexcept {
    kind_ = Kind::kList;
    std::vector<vid_t> buffer = std::move(vertices_);
    vertices_.clear();
    return buffer;
  }

  /// Bitmap counterpart of release_vertices(): steals the word buffer for
  /// reuse as the next rebuild's output. Word contents are unspecified
  /// afterwards — rebuilds overwrite every word.
  [[nodiscard]] std::vector<std::uint64_t> release_words() noexcept {
    std::vector<std::uint64_t> buffer = std::move(words_);
    words_.clear();
    count_ = 0;
    return buffer;
  }

  /// Host-side iteration over the active vertices in ascending order (lists
  /// are visited in list order), without materializing a vector — the fast
  /// path for call sites that previously paid to_vector()'s iota/gather
  /// allocation just to loop.
  template <typename Visit>
  void for_each(Visit&& visit) const {
    switch (kind_) {
      case Kind::kImplicitAll:
        for (vid_t v = 0; v < num_vertices_; ++v) visit(v);
        return;
      case Kind::kList:
        for (const vid_t v : vertices_) visit(v);
        return;
      case Kind::kBitmap:
        sim::visit_set_bits_span(
            words_, 0,
            [&](std::int64_t bit) { visit(static_cast<vid_t>(bit)); });
        return;
    }
  }

  /// Materialized vertex list (allocates for implicit-all and bitmap
  /// frontiers; prefer for_each when only iterating).
  [[nodiscard]] std::vector<vid_t> to_vector() const {
    if (kind_ == Kind::kList) return vertices_;
    std::vector<vid_t> v;
    v.reserve(static_cast<std::size_t>(size()));
    for_each([&](vid_t u) { v.push_back(u); });
    return v;
  }

 private:
  enum class Kind { kImplicitAll, kList, kBitmap };

  Frontier() = default;
  vid_t num_vertices_ = 0;
  Kind kind_ = Kind::kList;
  FrontierMode mode_ = FrontierMode::kSparse;
  std::vector<vid_t> vertices_;
  std::vector<std::uint64_t> words_;
  std::int64_t count_ = 0;
};

}  // namespace gcol::gr
