#pragma once
// Gebremedhin-Manne speculative greedy coloring [Gebremedhin & Manne, CCPE
// 2000], iterated in parallel after Deveci et al. [IPDPS 2016] — the
// paper's first named future-work direction ("compare these algorithms with
// Gebremedhin-Manne on the GPU").
//
// Each round: (1) optimistic phase — every active vertex takes the minimum
// color absent from its (racily observed) neighborhood; (2) conflict
// detection — monochromatic edges send their higher-id endpoint back to the
// active set; (3) repeat on the conflicted set, switching to a sequential
// cleanup when the set is tiny (Salihoglu-Widom style "finish serially").

#include "core/result.hpp"
#include "graph/csr.hpp"

namespace gcol::color {

struct GmSpeculativeOptions : Options {
  /// When the conflicted set drops below this many vertices, finish them
  /// sequentially instead of paying further parallel rounds.
  std::int64_t sequential_threshold = 64;
};

[[nodiscard]] Coloring gm_speculative_color(
    const graph::Csr& csr, const GmSpeculativeOptions& options = {});

}  // namespace gcol::color
