#include "graph/mmio.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/build.hpp"

namespace gcol::graph {
namespace {

TEST(Mmio, ReadsGeneralPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2\n"
      "2 3\n");
  const Coo coo = read_matrix_market(in);
  EXPECT_EQ(coo.num_vertices, 3);
  EXPECT_EQ(coo.num_edges(), 2u);
  EXPECT_EQ(coo.src[0], 0);
  EXPECT_EQ(coo.dst[0], 1);
}

TEST(Mmio, ExpandsSymmetricStorage) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "2 1 0.5\n"
      "3 1 1.5\n"
      "3 3 2.5\n");  // diagonal entry: not duplicated
  const Coo coo = read_matrix_market(in);
  // two off-diagonal entries doubled + one diagonal = 5
  EXPECT_EQ(coo.num_edges(), 5u);
  const Csr csr = build_csr(coo);  // cleanup drops the self loop
  EXPECT_EQ(csr.num_edges(), 4);
}

TEST(Mmio, IgnoresRealValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 2 3.14159\n");
  const Coo coo = read_matrix_market(in);
  EXPECT_EQ(coo.num_edges(), 1u);
}

TEST(Mmio, RejectsRectangular) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 4 1\n"
      "1 2\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsMissingBanner) {
  std::istringstream in("3 3 1\n1 2\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsArrayFormat) {
  std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsOutOfRangeIndex) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 3\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsTruncatedEntryList) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n"
      "1 2\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, BannerIsCaseInsensitive) {
  std::istringstream in(
      "%%MatrixMarket MATRIX Coordinate Pattern SYMMETRIC\n"
      "2 2 1\n"
      "2 1\n");
  const Coo coo = read_matrix_market(in);
  EXPECT_EQ(coo.num_edges(), 2u);
}

TEST(Mmio, WriteReadRoundTrip) {
  Coo coo;
  coo.num_vertices = 5;
  coo.add_edge(0, 1);
  coo.add_edge(1, 2);
  coo.add_edge(2, 3);
  coo.add_edge(3, 4);
  coo.add_edge(4, 0);
  coo.add_edge(1, 3);
  const Csr original = build_csr(coo);

  std::stringstream buffer;
  write_matrix_market(buffer, original);
  const Csr reloaded = build_csr(read_matrix_market(buffer));
  EXPECT_EQ(reloaded.row_offsets, original.row_offsets);
  EXPECT_EQ(reloaded.col_indices, original.col_indices);
}

}  // namespace
}  // namespace gcol::graph
