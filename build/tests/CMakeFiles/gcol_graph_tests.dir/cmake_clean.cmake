file(REMOVE_RECURSE
  "CMakeFiles/gcol_graph_tests.dir/graph/build_test.cpp.o"
  "CMakeFiles/gcol_graph_tests.dir/graph/build_test.cpp.o.d"
  "CMakeFiles/gcol_graph_tests.dir/graph/datasets_test.cpp.o"
  "CMakeFiles/gcol_graph_tests.dir/graph/datasets_test.cpp.o.d"
  "CMakeFiles/gcol_graph_tests.dir/graph/generators_test.cpp.o"
  "CMakeFiles/gcol_graph_tests.dir/graph/generators_test.cpp.o.d"
  "CMakeFiles/gcol_graph_tests.dir/graph/mmio_test.cpp.o"
  "CMakeFiles/gcol_graph_tests.dir/graph/mmio_test.cpp.o.d"
  "CMakeFiles/gcol_graph_tests.dir/graph/permute_test.cpp.o"
  "CMakeFiles/gcol_graph_tests.dir/graph/permute_test.cpp.o.d"
  "CMakeFiles/gcol_graph_tests.dir/graph/stats_test.cpp.o"
  "CMakeFiles/gcol_graph_tests.dir/graph/stats_test.cpp.o.d"
  "gcol_graph_tests"
  "gcol_graph_tests.pdb"
  "gcol_graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcol_graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
