# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gcol_grb_tests.
