// End-to-end observability contract: every Figure 1 algorithm must come back
// with a populated metrics payload — a non-empty kernel stream and a
// consistent per-iteration series — so the bench --json reports are never
// silently hollow for any of the paper's nine compared series.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/verify.hpp"
#include "graph/build.hpp"
#include "graph/generators/rgg.hpp"
#include "obs/metrics.hpp"
#include "sim/device.hpp"

namespace gcol {
namespace {

class MetricsEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    csr_ = graph::build_csr(graph::generate_rgg(8, {.seed = 7}));
    ASSERT_GT(csr_.num_vertices, 0);
  }

  graph::Csr csr_;
};

TEST_F(MetricsEndToEndTest, EveryFigure1AlgorithmReportsKernelLaunches) {
  for (const color::AlgorithmSpec* spec : color::figure1_algorithms()) {
    const color::Coloring result = spec->run(csr_, color::Options{});
    ASSERT_TRUE(color::is_valid_coloring(csr_, result.colors)) << spec->name;
    EXPECT_GT(result.kernel_launches, 0u) << spec->name;
    // The listener was installed before the launch window, so the captured
    // stream covers at least every counted launch.
    EXPECT_GT(result.metrics.total_kernel_launches(), 0u) << spec->name;
    EXPECT_GE(result.metrics.total_kernel_launches(),
              result.kernel_launches)
        << spec->name;
    EXPECT_FALSE(result.metrics.kernel_names().empty()) << spec->name;
  }
}

TEST_F(MetricsEndToEndTest, EveryFigure1AlgorithmReportsConsistentSeries) {
  const auto n = static_cast<std::int64_t>(csr_.num_vertices);
  for (const color::AlgorithmSpec* spec : color::figure1_algorithms()) {
    const color::Coloring result = spec->run(csr_, color::Options{});

    // "frontier": uncolored vertices entering each round. Starts with the
    // whole graph and can only shrink as vertices settle.
    const auto* frontier = result.metrics.series("frontier");
    ASSERT_NE(frontier, nullptr) << spec->name;
    ASSERT_FALSE(frontier->empty()) << spec->name;
    EXPECT_EQ(frontier->front(), n) << spec->name;
    for (std::size_t i = 1; i < frontier->size(); ++i) {
      EXPECT_LE((*frontier)[i], (*frontier)[i - 1])
          << spec->name << " frontier grew at round " << i;
    }

    // "colored": cumulative settled vertices. Non-decreasing, and the last
    // round must account for the whole graph.
    const auto* colored = result.metrics.series("colored");
    ASSERT_NE(colored, nullptr) << spec->name;
    ASSERT_FALSE(colored->empty()) << spec->name;
    EXPECT_EQ(colored->back(), n) << spec->name;
    for (std::size_t i = 1; i < colored->size(); ++i) {
      EXPECT_GE((*colored)[i], (*colored)[i - 1])
          << spec->name << " colored shrank at round " << i;
    }

    // Each iteration of the outer loop pushes exactly one sample.
    EXPECT_EQ(frontier->size(), colored->size()) << spec->name;
    EXPECT_GE(static_cast<std::int64_t>(frontier->size()), 1) << spec->name;
  }
}

/// Tracer-slot listener that checks, for every observed launch, that the
/// per-slot telemetry is internally consistent: slot item counts sum to the
/// launch's item total and every slot's busy window fits inside the launch.
/// Installed on the tracer slot so the algorithms' own ScopedDeviceMetrics
/// (which swaps the exclusive metrics-listener slot) cannot mask it.
class TelemetryAuditor final : public sim::LaunchListener {
 public:
  explicit TelemetryAuditor(sim::Device& device)
      : device_(device), previous_(device.set_trace_listener(this)) {}
  ~TelemetryAuditor() override { device_.set_trace_listener(previous_); }

  TelemetryAuditor(const TelemetryAuditor&) = delete;
  TelemetryAuditor& operator=(const TelemetryAuditor&) = delete;

  void on_kernel_launch(const sim::LaunchInfo& info) override {
    ++launches_;
    ASSERT_NE(info.slot_telemetry, nullptr) << info.name;
    ASSERT_GE(info.slots, 1u) << info.name;
    ASSERT_LE(info.slots, device_.num_workers()) << info.name;
    std::int64_t slot_items = 0;
    sim::Traffic slot_bytes{};
    for (unsigned s = 0; s < info.slots; ++s) {
      const sim::SlotTelemetry& t = info.slot_telemetry[s];
      slot_items += t.items;
      slot_bytes += sim::Traffic{t.bytes_read, t.bytes_written};
      EXPECT_GE(t.items, 0) << info.name << " slot " << s;
      EXPECT_GE(t.bytes_read, 0) << info.name << " slot " << s;
      EXPECT_GE(t.bytes_written, 0) << info.name << " slot " << s;
      EXPECT_GE(t.start_ms, 0.0) << info.name << " slot " << s;
      EXPECT_GE(t.end_ms, t.start_ms) << info.name << " slot " << s;
      EXPECT_LE(t.end_ms, info.elapsed_ms) << info.name << " slot " << s;
      // No sampler is installed in this test, so hardware validity must
      // never be invented (and stale flags must not leak across launches).
      EXPECT_FALSE(t.hw_valid) << info.name << " slot " << s;
    }
    // The invariant the imbalance metrics rest on: no work item is lost or
    // double-counted across slots, on any schedule, at any worker count.
    EXPECT_EQ(slot_items, info.items) << info.name;
    // Same conservation law for the traffic model (DESIGN.md §3h): per-slot
    // modeled bytes sum to the launch total exactly — zero when the kernel
    // declared no model.
    EXPECT_EQ(slot_bytes.bytes_read, info.traffic.bytes_read) << info.name;
    EXPECT_EQ(slot_bytes.bytes_written, info.traffic.bytes_written)
        << info.name;
    EXPECT_FALSE(info.hw) << info.name;
  }

  [[nodiscard]] std::uint64_t launches() const noexcept { return launches_; }

 private:
  sim::Device& device_;
  sim::LaunchListener* previous_;
  std::uint64_t launches_ = 0;
};

TEST_F(MetricsEndToEndTest, PerSlotTelemetrySumsMatchLaunchItemTotals) {
  // Runs under the suite's worker matrix: the plain ctest entry exercises
  // GCOL_THREADS=1 (inline/1-worker telemetry path) and the _mt4 entry
  // GCOL_THREADS=4 (static, dynamic and slot-kernel paths).
  auto& device = sim::Device::instance();
  TelemetryAuditor auditor(device);
  for (const color::AlgorithmSpec* spec : color::figure1_algorithms()) {
    const std::uint64_t before = device.launch_count();
    const color::Coloring result = spec->run(csr_, color::Options{});
    ASSERT_TRUE(color::is_valid_coloring(csr_, result.colors)) << spec->name;
    // Every counted launch was audited (HasFatalFailure surfaces per-launch
    // assertion failures from inside the listener).
    ASSERT_FALSE(::testing::Test::HasFatalFailure()) << spec->name;
    EXPECT_GE(auditor.launches(), device.launch_count() - before)
        << spec->name;
  }
  EXPECT_GT(auditor.launches(), 0u);
}

TEST_F(MetricsEndToEndTest, Figure1AlgorithmsReportImbalanceAggregates) {
  // The gcol-bench-v2 contract: every Figure-1 algorithm's per-kernel stats
  // carry the telemetry aggregates (the bench JSON derives its imbalance
  // triple from them) because the run executed under a metrics listener.
  for (const color::AlgorithmSpec* spec : color::figure1_algorithms()) {
    const color::Coloring result = spec->run(csr_, color::Options{});
    std::uint64_t telemetered = 0;
    for (const std::string& name : result.metrics.kernel_names()) {
      const obs::KernelStat* stat = result.metrics.kernel(name);
      ASSERT_NE(stat, nullptr) << spec->name;
      telemetered += stat->telemetry_launches;
      if (stat->telemetry_launches == 0) continue;
      EXPECT_EQ(stat->telemetry_launches, stat->launches)
          << spec->name << "/" << name;
      EXPECT_EQ(stat->telemetry_items, stat->items)
          << spec->name << "/" << name;
      EXPECT_GE(stat->slot_samples, stat->telemetry_launches)
          << spec->name << "/" << name;
      EXPECT_GE(stat->busy_max_over_mean(), 1.0) << spec->name << "/" << name;
      EXPECT_GE(stat->barrier_wait_share(), 0.0) << spec->name << "/" << name;
      EXPECT_LE(stat->barrier_wait_share(), 1.0) << spec->name << "/" << name;
      EXPECT_GE(stat->items_cov(), 0.0) << spec->name << "/" << name;
    }
    EXPECT_GT(telemetered, 0u) << spec->name;
  }
}

TEST_F(MetricsEndToEndTest, ParallelFigure1AlgorithmsReportModeledTraffic) {
  // Tier-A coverage contract: every GraphBLAST- and Gunrock-family
  // algorithm runs at least one traffic-modeled kernel (the serial greedy
  // baseline and Naumov's monolithic per-vertex kernels are data-dependent
  // traversals, deliberately unmodeled). Modeled aggregates must obey the
  // basic accounting identities whatever the kernel mix.
  for (const color::AlgorithmSpec* spec : color::figure1_algorithms()) {
    const color::Coloring result = spec->run(csr_, color::Options{});
    std::uint64_t modeled = 0;
    for (const std::string& name : result.metrics.kernel_names()) {
      const obs::KernelStat* stat = result.metrics.kernel(name);
      ASSERT_NE(stat, nullptr) << spec->name;
      modeled += stat->modeled_launches;
      EXPECT_LE(stat->modeled_launches, stat->launches)
          << spec->name << "/" << name;
      EXPECT_GE(stat->bytes_read, 0) << spec->name << "/" << name;
      EXPECT_GE(stat->bytes_written, 0) << spec->name << "/" << name;
      EXPECT_LE(stat->modeled_ms, stat->total_ms + 1e-9)
          << spec->name << "/" << name;
      if (stat->modeled_launches == 0) {
        // Unmodeled kernels must not carry phantom bytes.
        EXPECT_EQ(stat->bytes_read + stat->bytes_written, 0)
            << spec->name << "/" << name;
      } else {
        EXPECT_GT(stat->bytes_read + stat->bytes_written, 0)
            << spec->name << "/" << name;
        EXPECT_GE(stat->gbps(), 0.0) << spec->name << "/" << name;
      }
      // No sampler installed: Tier B must stay silent.
      EXPECT_EQ(stat->hw_launches, 0u) << spec->name << "/" << name;
    }
    const std::string name(spec->name);
    if (name.rfind("grb_", 0) == 0 || name.rfind("gunrock_", 0) == 0) {
      EXPECT_GT(modeled, 0u) << spec->name;
    }
  }
}

TEST_F(MetricsEndToEndTest, RepeatRunsStartFromACleanPayload) {
  const color::AlgorithmSpec* spec = color::find_algorithm("gunrock_is");
  ASSERT_NE(spec, nullptr);
  const color::Coloring first = spec->run(csr_, color::Options{});
  const color::Coloring second = spec->run(csr_, color::Options{});
  // Metrics belong to the run, not the process: a second run must not
  // accumulate on top of the first one's series.
  const auto* fa = first.metrics.series("colored");
  const auto* fb = second.metrics.series("colored");
  ASSERT_NE(fa, nullptr);
  ASSERT_NE(fb, nullptr);
  EXPECT_EQ(fa->size(), fb->size());
  EXPECT_EQ(fb->back(), static_cast<std::int64_t>(csr_.num_vertices));
}

}  // namespace
}  // namespace gcol
