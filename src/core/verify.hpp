#pragma once
// Independent verification of colorings. Every test and benchmark validates
// algorithm output through these functions, which share no code with the
// algorithms themselves.

#include <optional>
#include <span>
#include <vector>

#include "core/result.hpp"
#include "graph/csr.hpp"

namespace gcol::color {

/// A proper-coloring violation: either an uncolored vertex (neighbor ==
/// kUncolored sentinel) or an edge whose endpoints share a color.
struct Violation {
  vid_t vertex = 0;
  vid_t neighbor = 0;  ///< kUncolored when `vertex` itself is uncolored
  std::int32_t color = kUncolored;
};

/// Returns the first violation found, or nullopt for a proper and complete
/// coloring. O(n + m).
[[nodiscard]] std::optional<Violation> find_violation(
    const graph::Csr& csr, std::span<const std::int32_t> colors);

/// True when every vertex is colored and no edge is monochromatic.
[[nodiscard]] bool is_valid_coloring(const graph::Csr& csr,
                                     std::span<const std::int32_t> colors);

/// Number of distinct colors used (ignoring kUncolored entries).
[[nodiscard]] std::int32_t count_colors(std::span<const std::int32_t> colors);

/// Histogram of color-class sizes, indexed by color. The balance of these
/// classes determines available parallelism in downstream consumers
/// (multicolor Gauss-Seidel, chromatic scheduling).
[[nodiscard]] std::vector<std::int64_t> color_histogram(
    std::span<const std::int32_t> colors);

/// Fills result.num_colors from result.colors and returns whether the
/// coloring verifies against `csr`.
bool finalize_and_verify(const graph::Csr& csr, Coloring& result);

}  // namespace gcol::color
