// Future-work experiment from the paper's conclusion: "examine how the
// largest-degree-first heuristic compares with the randomized algorithms ...
// With power law graphs, it is possible that a random weight initialization
// would perform worse than largest-degree first". Compares Jones-Plassmann
// priorities (random / LDF / SDL) and greedy orderings on a mesh-like RGG
// versus an R-MAT power-law graph.

#include <cstdio>
#include <string>

#include "common/bench_util.hpp"
#include "core/registry.hpp"
#include "graph/build.hpp"
#include "graph/generators/rgg.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/stats.hpp"

namespace {

using namespace gcol;

void run_panel(const char* title, const graph::Csr& csr,
               const bench::Args& args) {
  const graph::DegreeStats stats = graph::degree_stats(csr);
  std::printf("-- %s (V=%d, E=%lld, avg_deg=%.1f, max_deg=%d) --\n", title,
              csr.num_vertices,
              static_cast<long long>(csr.num_undirected_edges()),
              stats.average_degree, stats.max_degree);
  bench::TablePrinter table(
      {"algorithm", "ms", "colors", "iterations"}, args.csv);
  for (const char* name : {"jp_random", "jp_ldf", "jp_sdl", "jp_hybrid",
                           "cpu_greedy", "cpu_greedy_lf", "cpu_greedy_sl",
                           "cpu_greedy_id", "dsatur", "gunrock_is",
                           "grb_mis"}) {
    const color::AlgorithmSpec* spec = color::find_algorithm(name);
    const bench::Measurement m =
        bench::run_averaged(*spec, csr, args.seed, args.runs, args.frontier_mode, args.reorder, args.graph_replay);
    if (!m.valid) {
      std::fprintf(stderr, "INVALID coloring from %s\n", name);
      std::exit(1);
    }
    table.add_row({spec->display_name, bench::fmt(m.ms_avg),
                   std::to_string(m.result.num_colors),
                   std::to_string(m.result.iterations)});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  std::printf("== Ablation: degree-based vs randomized priorities "
              "(paper future work; runs=%d) ==\n\n",
              args.runs);
  run_panel("mesh-like: rgg_n_2_14_s0",
            graph::build_csr(
                graph::generate_rgg(14, {.seed = args.seed + 200})),
            args);
  run_panel("power-law: rmat scale 14, edge factor 8",
            graph::build_csr(
                graph::generate_rmat(14, 8, {.seed = args.seed + 300})),
            args);
  return 0;
}
