// Cache-aware reordering subsystem (graph/reorder.hpp) tests: permutation
// round-trips, relabeled-CSR isomorphism invariants, the strategy-specific
// ordering properties, and — the external contract — every registered
// algorithm under every reorder strategy producing a conflict-free coloring
// on the ORIGINAL labeling, byte-identical to its identity-layout coloring
// for every algorithm whose result is a pure function of the logical graph.
// tests/CMakeLists.txt registers this binary at GCOL_THREADS=1 and 4 (and
// the TSan CI job runs both), so the histogram/scan/scatter relabel pipeline
// and the un-permute kernel are exercised under real concurrency.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/registry.hpp"
#include "core/verify.hpp"
#include "graph/build.hpp"
#include "graph/generators/erdos_renyi.hpp"
#include "graph/generators/rgg.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/reorder.hpp"
#include "sim/device.hpp"

namespace gcol::graph {
namespace {

enum class Family { kErdosRenyi, kRmat, kRgg };

const char* family_name(Family family) {
  switch (family) {
    case Family::kErdosRenyi: return "Gnm";
    case Family::kRmat: return "Rmat";
    case Family::kRgg: return "Rgg";
  }
  return "Unknown";
}

Csr make_graph(Family family) {
  switch (family) {
    case Family::kErdosRenyi:
      return build_csr(generate_erdos_renyi(600, 3000, 42));
    case Family::kRmat:
      // Skewed degrees: the case degree_sort/dbg binning actually permutes,
      // and hub rows stress the parallel scatter's stability.
      return build_csr(generate_rmat(9, 8, {.seed = 17}));
    case Family::kRgg:
      return build_csr(generate_rgg(9, {.seed = 7}));
  }
  return {};
}

const ReorderStrategy kStrategies[] = {
    ReorderStrategy::kIdentity, ReorderStrategy::kDegreeSort,
    ReorderStrategy::kDbg, ReorderStrategy::kBfs};

// ---------------------------------------------------------------------------
// Permutation mechanics
// ---------------------------------------------------------------------------

TEST(ReorderPermutationTest, IdentityPermutationIsIdentity) {
  const Permutation perm = identity_permutation(5);
  EXPECT_TRUE(perm.check());
  for (vid_t v = 0; v < 5; ++v) {
    EXPECT_EQ(perm.new_of_old[static_cast<std::size_t>(v)], v);
    EXPECT_EQ(perm.old_of_new[static_cast<std::size_t>(v)], v);
  }
}

TEST(ReorderPermutationTest, ParseRoundTripsEveryStrategy) {
  for (const ReorderStrategy strategy : all_reorder_strategies()) {
    ReorderStrategy parsed = ReorderStrategy::kIdentity;
    EXPECT_TRUE(parse_reorder(to_string(strategy), parsed))
        << to_string(strategy);
    EXPECT_EQ(parsed, strategy);
  }
  ReorderStrategy parsed = ReorderStrategy::kIdentity;
  EXPECT_FALSE(parse_reorder("metis", parsed));
}

TEST(ReorderPermutationTest, EveryStrategyYieldsABijection) {
  for (const Family family :
       {Family::kErdosRenyi, Family::kRmat, Family::kRgg}) {
    const Csr csr = make_graph(family);
    for (const ReorderStrategy strategy : kStrategies) {
      const Permutation perm = make_permutation(csr, strategy);
      ASSERT_EQ(perm.size(), csr.num_vertices)
          << family_name(family) << "/" << to_string(strategy);
      EXPECT_TRUE(perm.check())
          << family_name(family) << "/" << to_string(strategy);
      // Forward and inverse really are inverses, both ways.
      for (vid_t v = 0; v < csr.num_vertices; ++v) {
        EXPECT_EQ(perm.new_of_old[static_cast<std::size_t>(
                      perm.old_of_new[static_cast<std::size_t>(v)])],
                  v);
        EXPECT_EQ(perm.old_of_new[static_cast<std::size_t>(
                      perm.new_of_old[static_cast<std::size_t>(v)])],
                  v);
      }
    }
  }
}

TEST(ReorderPermutationTest, DegreeSortOrdersHubsFirst) {
  const Csr csr = make_graph(Family::kRmat);
  const Permutation perm =
      make_permutation(csr, ReorderStrategy::kDegreeSort);
  for (vid_t k = 1; k < csr.num_vertices; ++k) {
    EXPECT_GE(csr.degree(perm.old_of_new[static_cast<std::size_t>(k - 1)]),
              csr.degree(perm.old_of_new[static_cast<std::size_t>(k)]))
        << "degree_sort not non-increasing at new position " << k;
  }
}

TEST(ReorderPermutationTest, DbgGroupsByDegreeBinHubsFirst) {
  const Csr csr = make_graph(Family::kRmat);
  const Permutation perm = make_permutation(csr, ReorderStrategy::kDbg);
  const auto bin_of = [&](vid_t old_v) {
    return std::bit_width(static_cast<std::uint32_t>(csr.degree(old_v)));
  };
  for (vid_t k = 1; k < csr.num_vertices; ++k) {
    EXPECT_GE(bin_of(perm.old_of_new[static_cast<std::size_t>(k - 1)]),
              bin_of(perm.old_of_new[static_cast<std::size_t>(k)]))
        << "dbg bins not non-increasing at new position " << k;
  }
  // Within one bin the original order is preserved (stable grouping).
  for (vid_t k = 1; k < csr.num_vertices; ++k) {
    const vid_t prev = perm.old_of_new[static_cast<std::size_t>(k - 1)];
    const vid_t cur = perm.old_of_new[static_cast<std::size_t>(k)];
    if (bin_of(prev) == bin_of(cur)) {
      EXPECT_LT(prev, cur) << "dbg not stable within a bin at " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Relabeled-CSR isomorphism invariants
// ---------------------------------------------------------------------------

class ReorderRelabelTest
    : public ::testing::TestWithParam<std::tuple<Family, ReorderStrategy>> {};

TEST_P(ReorderRelabelTest, RelabeledCsrIsIsomorphic) {
  const auto& [family, strategy] = GetParam();
  const Csr csr = make_graph(family);
  const Permutation perm = make_permutation(csr, strategy);
  const Csr relabeled = relabel(csr, perm);

  ASSERT_TRUE(relabeled.check());
  ASSERT_EQ(relabeled.num_vertices, csr.num_vertices);
  ASSERT_EQ(relabeled.num_edges(), csr.num_edges());

  for (vid_t old_v = 0; old_v < csr.num_vertices; ++old_v) {
    const vid_t new_v = perm.new_of_old[static_cast<std::size_t>(old_v)];
    ASSERT_EQ(relabeled.degree(new_v), csr.degree(old_v))
        << "degree changed for old vertex " << old_v;
    // The relabeled neighborhood is exactly the image of the original one.
    std::vector<vid_t> expected;
    for (const vid_t u : csr.neighbors(old_v)) {
      expected.push_back(perm.new_of_old[static_cast<std::size_t>(u)]);
    }
    std::sort(expected.begin(), expected.end());
    const auto actual = relabeled.neighbors(new_v);
    ASSERT_TRUE(std::equal(actual.begin(), actual.end(), expected.begin(),
                           expected.end()))
        << "neighborhood image mismatch at old vertex " << old_v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAllStrategies, ReorderRelabelTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi, Family::kRmat,
                                         Family::kRgg),
                       ::testing::ValuesIn(kStrategies)),
    [](const ::testing::TestParamInfo<std::tuple<Family, ReorderStrategy>>&
           param_info) {
      return std::string(family_name(std::get<0>(param_info.param))) + "_" +
             to_string(std::get<1>(param_info.param));
    });

TEST(ReorderRelabelTest, RelabelRejectsSizeMismatch) {
  const Csr csr = make_graph(Family::kErdosRenyi);
  const Permutation wrong = identity_permutation(csr.num_vertices - 1);
  EXPECT_THROW((void)relabel(csr, wrong), std::invalid_argument);
}

TEST(ReorderRelabelTest, IdentityRelabelIsByteIdentical) {
  const Csr csr = make_graph(Family::kRgg);
  const Csr relabeled =
      relabel(csr, make_permutation(csr, ReorderStrategy::kIdentity));
  EXPECT_EQ(relabeled.row_offsets, csr.row_offsets);
  EXPECT_EQ(relabeled.col_indices, csr.col_indices);
}

// ---------------------------------------------------------------------------
// Transparent coloring contract: Options::reorder through the registry
// ---------------------------------------------------------------------------

color::Coloring run(const color::AlgorithmSpec& spec, const Csr& csr,
                    ReorderStrategy strategy) {
  color::Options options;
  options.seed = 99;
  options.reorder = strategy;
  return spec.run(csr, options);
}

/// The two speculative algorithms read neighbors' in-flight colors as they
/// are written, so their result depends on traversal order — which is
/// exactly what relabeling changes. They are verify-only here at EVERY
/// worker count (unlike the frontier-mode suite's multi-worker-only
/// exclusion); everything else must be a pure function of the logical graph.
bool order_dependent(const std::string& name) {
  return name == "gunrock_hash" || name == "gm_speculative";
}

using ColorParam = std::tuple<std::string, Family, ReorderStrategy>;

class ReorderColoringTest : public ::testing::TestWithParam<ColorParam> {};

TEST_P(ReorderColoringTest, ConflictFreeAndInvariant) {
  const auto& [algorithm_name, family, strategy] = GetParam();
  const color::AlgorithmSpec* spec = color::find_algorithm(algorithm_name);
  ASSERT_NE(spec, nullptr);
  const Csr csr = make_graph(family);

  const color::Coloring result = run(*spec, csr, strategy);
  // The contract: colors come back on the ORIGINAL labeling, conflict-free
  // against the ORIGINAL graph, whatever layout the registry colored under.
  ASSERT_EQ(result.colors.size(), static_cast<std::size_t>(csr.num_vertices));
  const auto violation = color::find_violation(csr, result.colors);
  EXPECT_FALSE(violation.has_value())
      << algorithm_name << " (reorder=" << to_string(strategy) << ") on "
      << family_name(family) << ": violation at vertex "
      << (violation ? violation->vertex : -1);
  EXPECT_EQ(result.num_colors, color::count_colors(result.colors));

  if (order_dependent(algorithm_name)) {
    GTEST_SKIP() << "order-dependent algorithm: verify-only under reorder";
  }
  const color::Coloring reference = run(*spec, csr, ReorderStrategy::kIdentity);
  EXPECT_EQ(result.colors, reference.colors)
      << algorithm_name << " (reorder=" << to_string(strategy)
      << ") diverged from the identity-layout coloring on "
      << family_name(family);
  EXPECT_EQ(result.num_colors, reference.num_colors);
}

std::vector<ColorParam> make_color_params() {
  std::vector<ColorParam> params;
  const Family families[] = {Family::kErdosRenyi, Family::kRmat, Family::kRgg};
  for (const color::AlgorithmSpec& spec : color::all_algorithms()) {
    for (const Family family : families) {
      for (const ReorderStrategy strategy : kStrategies) {
        params.emplace_back(spec.name, family, strategy);
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllStrategies, ReorderColoringTest,
    ::testing::ValuesIn(make_color_params()),
    [](const ::testing::TestParamInfo<ColorParam>& param_info) {
      // No structured bindings here: the macro would split on their commas.
      return std::get<0>(param_info.param) + "_" +
             family_name(std::get<1>(param_info.param)) + "_" +
             to_string(std::get<2>(param_info.param));
    });

// Regression for the randomized-priority contract: jp_random's draws are
// keyed on ORIGINAL vertex ids, so its coloring is byte-invariant to the
// reorder strategy. If a future change keys any draw on the relabeled id,
// this fails before the property suite's weaker validity checks would.
TEST(ReorderInvarianceTest, JpRandomColorsAreReorderInvariant) {
  const color::AlgorithmSpec* spec = color::find_algorithm("jp_random");
  ASSERT_NE(spec, nullptr);
  for (const Family family :
       {Family::kErdosRenyi, Family::kRmat, Family::kRgg}) {
    const Csr csr = make_graph(family);
    const color::Coloring reference =
        run(*spec, csr, ReorderStrategy::kIdentity);
    for (const ReorderStrategy strategy : kStrategies) {
      const color::Coloring result = run(*spec, csr, strategy);
      EXPECT_EQ(result.colors, reference.colors)
          << "jp_random not reorder-invariant under "
          << to_string(strategy) << " on " << family_name(family);
    }
  }
}

// The gunrock randomized family keys draws on original ids too; the BSP
// round structure makes their results order-free, so invariance must hold
// for the deterministic members at every worker count.
TEST(ReorderInvarianceTest, GunrockRandomizedFamilyIsReorderInvariant) {
  for (const char* name : {"gunrock_is", "gunrock_ar", "gunrock_is_atomics",
                           "gunrock_is_single", "gunrock_ar_fused"}) {
    const color::AlgorithmSpec* spec = color::find_algorithm(name);
    ASSERT_NE(spec, nullptr) << name;
    const Csr csr = make_graph(Family::kRmat);
    const color::Coloring reference =
        run(*spec, csr, ReorderStrategy::kIdentity);
    for (const ReorderStrategy strategy : kStrategies) {
      const color::Coloring result = run(*spec, csr, strategy);
      EXPECT_EQ(result.colors, reference.colors)
          << name << " not reorder-invariant under " << to_string(strategy);
    }
  }
}

}  // namespace
}  // namespace gcol::graph
