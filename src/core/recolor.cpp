#include "core/recolor.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/verify.hpp"
#include "sim/rng.hpp"
#include "sim/timer.hpp"

namespace gcol::color {

namespace {

/// Remaps colors to a dense range [0, k) preserving class identity.
std::int32_t normalize_colors(std::vector<std::int32_t>& colors) {
  std::int32_t max_color = kUncolored;
  for (const std::int32_t c : colors) max_color = std::max(max_color, c);
  if (max_color < 0) return 0;
  std::vector<std::int32_t> remap(static_cast<std::size_t>(max_color) + 1,
                                  -1);
  std::int32_t next = 0;
  for (std::int32_t& c : colors) {
    if (c < 0) continue;
    if (remap[static_cast<std::size_t>(c)] < 0) {
      remap[static_cast<std::size_t>(c)] = next++;
    }
    c = remap[static_cast<std::size_t>(c)];
  }
  return next;
}

std::vector<std::int64_t> class_sizes(std::span<const std::int32_t> colors,
                                      std::int32_t num_classes) {
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(num_classes), 0);
  for (const std::int32_t c : colors) {
    if (c >= 0) ++sizes[static_cast<std::size_t>(c)];
  }
  return sizes;
}

}  // namespace

double class_imbalance(std::span<const std::int32_t> colors) {
  std::int32_t max_color = kUncolored;
  for (const std::int32_t c : colors) max_color = std::max(max_color, c);
  if (max_color < 0) return 1.0;
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(max_color) + 1, 0);
  std::int64_t total = 0;
  for (const std::int32_t c : colors) {
    if (c >= 0) {
      ++sizes[static_cast<std::size_t>(c)];
      ++total;
    }
  }
  std::int64_t nonempty = 0;
  std::int64_t largest = 0;
  for (const std::int64_t s : sizes) {
    if (s > 0) ++nonempty;
    largest = std::max(largest, s);
  }
  if (nonempty == 0) return 1.0;
  const double average =
      static_cast<double>(total) / static_cast<double>(nonempty);
  return static_cast<double>(largest) / average;
}

Coloring iterated_greedy_recolor(const graph::Csr& csr,
                                 const Coloring& coloring,
                                 const IteratedGreedyOptions& options) {
  const vid_t n = csr.num_vertices;
  const auto un = static_cast<std::size_t>(n);

  Coloring result;
  result.algorithm = coloring.algorithm + "+iterated_greedy";
  result.colors = coloring.colors;
  const sim::Stopwatch watch;

  std::vector<vid_t> forbidden(un + 1, -1);
  const sim::CounterRng rng(options.seed, 0x1755);

  for (std::int32_t round = 0; round < options.rounds; ++round) {
    const std::int32_t num_classes = normalize_colors(result.colors);
    if (num_classes <= 1) break;

    // Visit order over classes.
    std::vector<std::int32_t> class_order(
        static_cast<std::size_t>(num_classes));
    std::iota(class_order.begin(), class_order.end(), 0);
    const auto sizes = class_sizes(result.colors, num_classes);
    switch (options.order) {
      case ClassOrder::kReverse:
        std::reverse(class_order.begin(), class_order.end());
        break;
      case ClassOrder::kLargestFirst:
        std::stable_sort(class_order.begin(), class_order.end(),
                         [&](std::int32_t a, std::int32_t b) {
                           return sizes[static_cast<std::size_t>(a)] >
                                  sizes[static_cast<std::size_t>(b)];
                         });
        break;
      case ClassOrder::kSmallestFirst:
        std::stable_sort(class_order.begin(), class_order.end(),
                         [&](std::int32_t a, std::int32_t b) {
                           return sizes[static_cast<std::size_t>(a)] <
                                  sizes[static_cast<std::size_t>(b)];
                         });
        break;
      case ClassOrder::kRandom:
        for (std::size_t i = class_order.size(); i > 1; --i) {
          const auto j = static_cast<std::size_t>(rng.uniform_below(
              static_cast<std::uint64_t>(round) * 131 + i,
              static_cast<std::uint64_t>(i)));
          std::swap(class_order[i - 1], class_order[j]);
        }
        break;
    }
    std::vector<std::int32_t> class_rank(
        static_cast<std::size_t>(num_classes));
    for (std::int32_t r = 0; r < num_classes; ++r) {
      class_rank[static_cast<std::size_t>(class_order[
          static_cast<std::size_t>(r)])] = r;
    }

    // Vertex visit order: by class rank (stable within class by id). The
    // Culberson invariant: because all same-class vertices are mutually
    // non-adjacent and visited together, first-fit can only merge classes,
    // never split one — the count cannot grow.
    std::vector<vid_t> order(un);
    std::iota(order.begin(), order.end(), vid_t{0});
    std::stable_sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
      return class_rank[static_cast<std::size_t>(
                 result.colors[static_cast<std::size_t>(a)])] <
             class_rank[static_cast<std::size_t>(
                 result.colors[static_cast<std::size_t>(b)])];
    });

    std::vector<std::int32_t> next(un, kUncolored);
    for (vid_t k = 0; k < n; ++k) {
      const vid_t v = order[static_cast<std::size_t>(k)];
      for (const vid_t u : csr.neighbors(v)) {
        const std::int32_t c = next[static_cast<std::size_t>(u)];
        if (c >= 0 && c <= n) forbidden[static_cast<std::size_t>(c)] = k;
      }
      std::int32_t c = 0;
      while (forbidden[static_cast<std::size_t>(c)] == k) ++c;
      next[static_cast<std::size_t>(v)] = c;
    }
    result.colors = std::move(next);
    ++result.iterations;
  }

  result.elapsed_ms = watch.elapsed_ms();
  result.num_colors = count_colors(result.colors);
  return result;
}

Coloring balance_colors(const graph::Csr& csr, const Coloring& coloring,
                        const BalanceOptions& options) {
  const vid_t n = csr.num_vertices;

  Coloring result;
  result.algorithm = coloring.algorithm + "+balanced";
  result.colors = coloring.colors;
  const sim::Stopwatch watch;

  const std::int32_t num_classes = normalize_colors(result.colors);
  if (num_classes > 1) {
    auto sizes = class_sizes(result.colors, num_classes);
    const std::int64_t target =
        (n + num_classes - 1) / num_classes;  // ceil(average)

    std::vector<bool> neighbor_uses(static_cast<std::size_t>(num_classes));
    for (std::int32_t round = 0; round < options.rounds; ++round) {
      bool moved = false;
      for (vid_t v = 0; v < n; ++v) {
        const auto cv = static_cast<std::size_t>(
            result.colors[static_cast<std::size_t>(v)]);
        if (sizes[cv] <= target) continue;  // class not oversized
        std::fill(neighbor_uses.begin(), neighbor_uses.end(), false);
        for (const vid_t u : csr.neighbors(v)) {
          neighbor_uses[static_cast<std::size_t>(
              result.colors[static_cast<std::size_t>(u)])] = true;
        }
        // Smallest feasible under-target class, if any improves balance.
        std::int32_t best = -1;
        for (std::int32_t c = 0; c < num_classes; ++c) {
          if (neighbor_uses[static_cast<std::size_t>(c)]) continue;
          if (sizes[static_cast<std::size_t>(c)] + 1 >= sizes[cv]) continue;
          if (best < 0 || sizes[static_cast<std::size_t>(c)] <
                              sizes[static_cast<std::size_t>(best)]) {
            best = c;
          }
        }
        if (best >= 0) {
          --sizes[cv];
          ++sizes[static_cast<std::size_t>(best)];
          result.colors[static_cast<std::size_t>(v)] = best;
          moved = true;
        }
      }
      ++result.iterations;
      if (!moved) break;
    }
  }

  result.elapsed_ms = watch.elapsed_ms();
  result.num_colors = count_colors(result.colors);
  return result;
}

}  // namespace gcol::color
