file(REMOVE_RECURSE
  "CMakeFiles/exam_scheduling.dir/exam_scheduling.cpp.o"
  "CMakeFiles/exam_scheduling.dir/exam_scheduling.cpp.o.d"
  "exam_scheduling"
  "exam_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exam_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
