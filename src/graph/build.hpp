#pragma once
// COO → CSR builder with the exact cleanup pipeline the paper applies to its
// datasets (§V-A): "All datasets have been converted to undirected graphs,
// and self-loops and duplicated edges are removed."

#include <cstdint>
#include <span>

#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace gcol::graph {

struct BuildOptions {
  bool symmetrize = true;         ///< add the reverse of every edge
  bool remove_self_loops = true;  ///< drop (v, v)
  bool deduplicate = true;        ///< drop duplicate (u, v)
};

/// Builds a clean CSR from an edge list: optional symmetrization, self-loop
/// removal and deduplication, sorted adjacency lists. Runs in
/// O(n + m log deg) time and O(n + m) extra space (counting sort on rows,
/// per-row std::sort on columns).
[[nodiscard]] Csr build_csr(const Coo& coo, const BuildOptions& options = {});

/// Extracts a COO edge list (both directions) from a CSR — used by tests and
/// by the Matrix Market writer.
[[nodiscard]] Coo to_coo(const Csr& csr);

/// Relabels vertices: new graph where old vertex v becomes new_id_of[v].
/// `new_id_of` must be a permutation of [0, n). The result is isomorphic to
/// the input (adjacency lists re-sorted).
[[nodiscard]] Csr permute_vertices(const Csr& csr,
                                   std::span<const vid_t> new_id_of);

/// Relabels vertices with a seeded random permutation. Used by the dataset
/// analogues: synthetic lattices have accidentally-perfect natural vertex
/// orders (a row-major grid 2-colors greedily), which real SuiteSparse
/// application orderings do not; shuffling removes that artifact without
/// changing the graph.
[[nodiscard]] Csr shuffle_vertices(const Csr& csr, std::uint64_t seed);

}  // namespace gcol::graph
