#include "gunrock/frontier.hpp"

#include <gtest/gtest.h>

namespace gcol::gr {
namespace {

TEST(Frontier, AllIsImplicit) {
  const Frontier f = Frontier::all(100);
  EXPECT_TRUE(f.is_all());
  EXPECT_EQ(f.size(), 100);
  EXPECT_FALSE(f.is_empty());
  EXPECT_EQ(f.vertex(0), 0);
  EXPECT_EQ(f.vertex(99), 99);
}

TEST(Frontier, ExplicitList) {
  const Frontier f = Frontier::of({5, 2, 9}, 10);
  EXPECT_FALSE(f.is_all());
  EXPECT_EQ(f.size(), 3);
  EXPECT_EQ(f.vertex(0), 5);
  EXPECT_EQ(f.vertex(2), 9);
  EXPECT_EQ(f.num_vertices(), 10);
}

TEST(Frontier, EmptyFrontier) {
  const Frontier f = Frontier::empty(10);
  EXPECT_TRUE(f.is_empty());
  EXPECT_EQ(f.size(), 0);
}

TEST(Frontier, AllOfZeroVerticesIsEmpty) {
  const Frontier f = Frontier::all(0);
  EXPECT_TRUE(f.is_empty());
}

TEST(Frontier, ToVectorMaterializesImplicit) {
  const Frontier f = Frontier::all(5);
  const auto v = f.to_vector();
  ASSERT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(v[i], static_cast<vid_t>(i));
  }
}

TEST(Frontier, ToVectorReturnsExplicitCopy) {
  const Frontier f = Frontier::of({3, 1}, 4);
  const auto v = f.to_vector();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 3);
  EXPECT_EQ(v[1], 1);
}

TEST(Frontier, AllBitsSetsEveryBitAndMasksTheTail) {
  const Frontier f = Frontier::all_bits(100, FrontierMode::kAuto);
  EXPECT_TRUE(f.is_bitmap());
  EXPECT_FALSE(f.is_all());
  EXPECT_EQ(f.size(), 100);
  EXPECT_EQ(f.mode(), FrontierMode::kAuto);
  for (vid_t v = 0; v < 100; ++v) EXPECT_TRUE(f.contains(v)) << v;
  // Tail invariant: bits >= num_vertices are clear, so dense word probes
  // never need a bounds check.
  ASSERT_EQ(f.words().size(), 2u);
  EXPECT_EQ(f.words()[1] >> (100 - 64), 0u);
}

TEST(Frontier, BitsFactoryCountAndMembership) {
  std::vector<std::uint64_t> words(2, 0);
  words[0] = (std::uint64_t{1} << 3) | (std::uint64_t{1} << 40);
  words[1] = std::uint64_t{1} << 1;  // vertex 65
  const Frontier f = Frontier::bits(std::move(words), 3, 70,
                                    FrontierMode::kBitmapPush);
  EXPECT_EQ(f.size(), 3);
  EXPECT_TRUE(f.contains(3));
  EXPECT_TRUE(f.contains(40));
  EXPECT_TRUE(f.contains(65));
  EXPECT_FALSE(f.contains(0));
  EXPECT_FALSE(f.contains(64));
}

TEST(Frontier, ForEachVisitsBitmapMembersAscending) {
  std::vector<std::uint64_t> words(3, 0);
  for (const int v : {0, 63, 64, 100, 129}) {
    words[static_cast<std::size_t>(v / 64)] |= std::uint64_t{1} << (v % 64);
  }
  const Frontier f =
      Frontier::bits(std::move(words), 5, 130, FrontierMode::kBitmapPull);
  std::vector<vid_t> seen;
  f.for_each([&](vid_t v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<vid_t>{0, 63, 64, 100, 129}));
  EXPECT_EQ(f.to_vector(), seen);
}

TEST(Frontier, ForEachCoversImplicitAndListWithoutAllocation) {
  std::vector<vid_t> seen;
  Frontier::all(4).for_each([&](vid_t v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<vid_t>{0, 1, 2, 3}));
  seen.clear();
  Frontier::of({2, 0}, 4).for_each([&](vid_t v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<vid_t>{2, 0}));
}

TEST(Frontier, ReleaseWordsRecyclesTheBuffer) {
  Frontier f = Frontier::all_bits(128, FrontierMode::kAuto);
  std::vector<std::uint64_t> buffer = f.release_words();
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(f.size(), 0);
  // Round-trip: the recycled buffer backs the next bitmap.
  buffer.assign(2, 0);
  buffer[0] = 0b101;
  const Frontier next =
      Frontier::bits(std::move(buffer), 2, 128, FrontierMode::kAuto);
  EXPECT_EQ(next.size(), 2);
  EXPECT_TRUE(next.contains(0));
  EXPECT_TRUE(next.contains(2));
}

TEST(FrontierMode, ToStringAndParseRoundTrip) {
  for (const FrontierMode mode :
       {FrontierMode::kSparse, FrontierMode::kBitmapPush,
        FrontierMode::kBitmapPull, FrontierMode::kAuto}) {
    FrontierMode parsed{};
    EXPECT_TRUE(parse_frontier_mode(to_string(mode), parsed));
    EXPECT_EQ(parsed, mode);
  }
  FrontierMode parsed{};
  EXPECT_FALSE(parse_frontier_mode("dense", parsed));
}

}  // namespace
}  // namespace gcol::gr
