// Multicolor Gauss-Seidel smoothing — the paper's "preconditioners for
// sparse iterative linear systems" motivation (§I, refs [3], [4]) and the
// application behind Naumov et al.'s csrcolor (incomplete-LU on the GPU).
//
// Gauss-Seidel updates are inherently sequential: x_i depends on already-
// updated neighbors. A graph coloring breaks the dependency: vertices of one
// color share no edge, so each color class updates in parallel, and the
// sweep becomes num_colors bulk-synchronous launches. Fewer colors = fewer
// launches = better parallelism, which is why coloring quality matters.
//
// This example solves a 2D Poisson problem (5-point stencil) three ways and
// shows (a) multicolor GS converges like lexicographic GS, (b) the launch
// count per sweep equals the color count, so GraphBLAST MIS's better
// coloring directly buys fewer synchronizations than Naumov CC's.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/gcol.hpp"
#include "graph/generators/grid.hpp"
#include "sim/device.hpp"

namespace {

using namespace gcol;

/// Residual norm of A x = b for the 5-point Laplacian (A = 4I - adjacency).
double residual_norm(const graph::Csr& csr, const std::vector<double>& x,
                     const std::vector<double>& b) {
  double sum = 0.0;
  for (vid_t v = 0; v < csr.num_vertices; ++v) {
    double ax = 4.0 * x[static_cast<std::size_t>(v)];
    for (const vid_t u : csr.neighbors(v)) {
      ax -= x[static_cast<std::size_t>(u)];
    }
    const double r = b[static_cast<std::size_t>(v)] - ax;
    sum += r * r;
  }
  return std::sqrt(sum);
}

/// One lexicographic (sequential) Gauss-Seidel sweep.
void gs_sweep_sequential(const graph::Csr& csr, std::vector<double>& x,
                         const std::vector<double>& b) {
  for (vid_t v = 0; v < csr.num_vertices; ++v) {
    double acc = b[static_cast<std::size_t>(v)];
    for (const vid_t u : csr.neighbors(v)) {
      acc += x[static_cast<std::size_t>(u)];
    }
    x[static_cast<std::size_t>(v)] = acc / 4.0;
  }
}

/// One multicolor sweep: one parallel launch per color class.
void gs_sweep_multicolor(
    const graph::Csr& csr, std::vector<double>& x,
    const std::vector<double>& b,
    const std::vector<std::vector<vid_t>>& classes) {
  auto& device = sim::Device::instance();
  for (const auto& color_class : classes) {
    device.launch(
        "mgs::sweep_class",
        static_cast<std::int64_t>(color_class.size()), [&](std::int64_t k) {
          const vid_t v = color_class[static_cast<std::size_t>(k)];
          double acc = b[static_cast<std::size_t>(v)];
          for (const vid_t u : csr.neighbors(v)) {
            acc += x[static_cast<std::size_t>(u)];
          }
          x[static_cast<std::size_t>(v)] = acc / 4.0;
        });
  }
}

std::vector<std::vector<vid_t>> color_classes(
    const color::Coloring& coloring) {
  std::vector<std::vector<vid_t>> classes(
      static_cast<std::size_t>(coloring.num_colors));
  // Colors may be non-contiguous (hash reuse, CC); remap densely first.
  std::vector<std::int32_t> remap;
  std::int32_t next = 0;
  for (std::size_t v = 0; v < coloring.colors.size(); ++v) {
    const std::int32_t c = coloring.colors[v];
    if (static_cast<std::size_t>(c) >= remap.size()) {
      remap.resize(static_cast<std::size_t>(c) + 1, -1);
    }
    if (remap[static_cast<std::size_t>(c)] < 0) {
      remap[static_cast<std::size_t>(c)] = next++;
    }
    classes[static_cast<std::size_t>(remap[static_cast<std::size_t>(c)])]
        .push_back(static_cast<vid_t>(v));
  }
  return classes;
}

}  // namespace

int main() {
  constexpr vid_t kSide = 128;
  const graph::Csr csr = graph::build_csr(graph::generate_grid2d(
      kSide, kSide, graph::Stencil2d::kFivePoint));
  std::printf("2D Poisson, %dx%d grid (5-point stencil), %d unknowns\n\n",
              kSide, kSide, csr.num_vertices);

  // Right-hand side: a point source in the middle.
  std::vector<double> b(static_cast<std::size_t>(csr.num_vertices), 0.0);
  b[static_cast<std::size_t>(csr.num_vertices) / 2] = 1.0;

  // Reference: sequential Gauss-Seidel.
  std::vector<double> x_seq(b.size(), 0.0);
  constexpr int kSweeps = 50;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    gs_sweep_sequential(csr, x_seq, b);
  }
  std::printf("%-24s %9s %14s %16s\n", "smoother", "colors",
              "launches/sweep", "final residual");
  std::printf("%-24s %9s %14s %16.3e\n", "sequential GS", "--", "--",
              residual_norm(csr, x_seq, b));

  // Multicolor GS with colorings of different quality.
  for (const char* name : {"grb_mis", "gunrock_is", "naumov_cc"}) {
    const color::AlgorithmSpec* spec = color::find_algorithm(name);
    color::Options options;
    const color::Coloring coloring = spec->run(csr, options);
    if (!color::is_valid_coloring(csr, coloring.colors)) return 1;
    const auto classes = color_classes(coloring);

    std::vector<double> x(b.size(), 0.0);
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      gs_sweep_multicolor(csr, x, b, classes);
    }
    std::printf("%-24s %9d %14zu %16.3e\n", spec->display_name.c_str(),
                coloring.num_colors, classes.size(),
                residual_norm(csr, x, b));
  }

  std::printf(
      "\nEvery multicolor variant converges like sequential GS, but each "
      "sweep costs one parallel launch per color: a 2-color (red-black) "
      "quality coloring synchronizes ~10x less often than a poor one.\n");
  return 0;
}
