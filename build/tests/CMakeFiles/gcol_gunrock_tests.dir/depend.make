# Empty dependencies file for gcol_gunrock_tests.
# This may be replaced when dependencies are built.
