// Sparse Jacobian compression via distance-2 coloring — the paper's
// automatic-differentiation motivation (§I, refs [8] Coleman-Moré, [9]
// Gebremedhin-Manne-Pothen "What color is your Jacobian?").
//
// To estimate a sparse Jacobian J with finite differences, columns that
// share no row may be perturbed together (they are "structurally
// orthogonal"): one function evaluation recovers all of them. Grouping
// columns = coloring the column intersection graph; for a symmetric pattern
// that is a distance-2 coloring of the adjacency graph. The compression
// factor (columns / colors) is the speedup over one-evaluation-per-column.
//
// This example builds the Jacobian pattern of a 2D reaction-diffusion
// stencil, groups columns with distance2_color, verifies structural
// orthogonality directly, and then actually recovers J from compressed
// finite-difference probes to show the end-to-end pipeline works.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/gcol.hpp"
#include "graph/generators/grid.hpp"
#include "sim/rng.hpp"

namespace {

using namespace gcol;

/// F(x) for a reaction-diffusion system on the grid: F_v(x) = 4 x_v -
/// sum_{u ~ v} x_u + x_v^2. Its Jacobian has the 5-point stencil pattern
/// (diagonal + adjacency).
std::vector<double> evaluate(const graph::Csr& csr,
                             const std::vector<double>& x) {
  std::vector<double> f(x.size());
  for (vid_t v = 0; v < csr.num_vertices; ++v) {
    const auto uv = static_cast<std::size_t>(v);
    double acc = 4.0 * x[uv] + x[uv] * x[uv];
    for (const vid_t u : csr.neighbors(v)) {
      acc -= x[static_cast<std::size_t>(u)];
    }
    f[uv] = acc;
  }
  return f;
}

/// Analytic Jacobian entry dF_v/dx_u for verification.
double jacobian_entry(const graph::Csr& csr, const std::vector<double>& x,
                      vid_t row, vid_t column) {
  if (row == column) return 4.0 + 2.0 * x[static_cast<std::size_t>(row)];
  for (const vid_t u : csr.neighbors(row)) {
    if (u == column) return -1.0;
  }
  return 0.0;
}

}  // namespace

int main() {
  constexpr vid_t kSide = 60;
  const graph::Csr csr =
      graph::build_csr(graph::generate_grid2d(kSide, kSide));
  const auto n = static_cast<std::size_t>(csr.num_vertices);
  std::printf("Jacobian pattern: %d columns, 5-point stencil "
              "(diagonal + %lld off-diagonals)\n",
              csr.num_vertices, static_cast<long long>(csr.num_edges()));

  // Group structurally-orthogonal columns: distance-2 coloring.
  const color::Coloring groups = color::distance2_color(csr);
  if (!color::is_valid_distance2_coloring(csr, groups.colors)) {
    std::printf("distance-2 coloring invalid!\n");
    return 1;
  }
  std::printf("column groups: %d (compression factor %.1fx, lower bound "
              "%d)\n\n",
              groups.num_colors,
              static_cast<double>(csr.num_vertices) / groups.num_colors,
              color::distance2_lower_bound(csr));

  // Verify structural orthogonality directly: two same-group columns never
  // share a Jacobian row (row v touches columns {v} union adj(v)).
  for (vid_t v = 0; v < csr.num_vertices; ++v) {
    const auto adj = csr.neighbors(v);
    for (std::size_t a = 0; a < adj.size(); ++a) {
      for (std::size_t b = a + 1; b < adj.size(); ++b) {
        if (groups.colors[static_cast<std::size_t>(adj[a])] ==
            groups.colors[static_cast<std::size_t>(adj[b])]) {
          std::printf("columns %d and %d share row %d and a group!\n",
                      adj[a], adj[b], v);
          return 1;
        }
      }
    }
  }
  std::printf("structural orthogonality verified for all rows\n");

  // Recover the Jacobian with one forward difference per GROUP.
  const sim::CounterRng rng(5);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = rng.uniform_double(i);
  const std::vector<double> f0 = evaluate(csr, x);
  constexpr double kStep = 1e-7;

  double max_error = 0.0;
  for (std::int32_t group = 0; group < groups.num_colors; ++group) {
    // Perturb every column of the group at once.
    std::vector<double> xp = x;
    for (std::size_t c = 0; c < n; ++c) {
      if (groups.colors[c] == group) xp[c] += kStep;
    }
    const std::vector<double> fp = evaluate(csr, xp);
    // Each row's difference is attributable to the unique group member in
    // that row's column support.
    for (vid_t row = 0; row < csr.num_vertices; ++row) {
      const auto ur = static_cast<std::size_t>(row);
      vid_t column = -1;
      if (groups.colors[ur] == group) {
        column = row;
      } else {
        for (const vid_t u : csr.neighbors(row)) {
          if (groups.colors[static_cast<std::size_t>(u)] == group) {
            column = u;
            break;
          }
        }
      }
      if (column < 0) continue;
      const double estimated = (fp[ur] - f0[ur]) / kStep;
      const double exact = jacobian_entry(csr, x, row, column);
      max_error = std::max(max_error, std::fabs(estimated - exact));
    }
  }
  std::printf("recovered all %lld nonzeros with %d evaluations instead of "
              "%d; max |error| = %.2e\n",
              static_cast<long long>(csr.num_edges() + csr.num_vertices),
              groups.num_colors, csr.num_vertices, max_error);
  return max_error < 1e-4 ? 0 : 1;
}
