#pragma once
// The one definition of "which contiguous [begin, end) block of n work items
// does worker `slot` own". Every statically-blocked kernel (device static
// dispatch, scan, reduce, compaction, edge-balanced advance) must partition
// identically so multi-launch primitives like scan can revisit exactly the
// elements they summed in an earlier phase.

#include <cstdint>

namespace gcol::sim {

struct SlotRange {
  std::int64_t begin;
  std::int64_t end;  ///< one past the last owned item; begin == end when empty
};

/// Contiguous block of [0, n) owned by `slot` out of `slots` workers:
/// ceil(n / slots) items per slot, trailing slots possibly empty. Always
/// returns a well-formed (begin <= end <= n) range.
[[nodiscard]] constexpr SlotRange slot_range(unsigned slot, unsigned slots,
                                             std::int64_t n) noexcept {
  const auto num_slots = static_cast<std::int64_t>(slots == 0 ? 1u : slots);
  const std::int64_t per = (n + num_slots - 1) / num_slots;
  std::int64_t begin = static_cast<std::int64_t>(slot) * per;
  if (begin > n) begin = n;
  std::int64_t end = begin + per;
  if (end > n) end = n;
  return {begin, end};
}

}  // namespace gcol::sim
