#pragma once
// Persistent worker pool used by the virtual-GPU device (see device.hpp).
//
// The pool models a GPU's resident thread blocks: a fixed set of workers that
// are woken for kernel launches and joined at an implicit barrier when the
// launch completes. Work distribution inside a launch is the caller's
// business (device.hpp offers static blocking and dynamic chunking).
//
// Since the stream layer (stream.hpp) the pool supports *partitioned*
// launches: run_on(first, count) wakes only the OS workers in the contiguous
// range [first, first + count - 1) and barriers with just them, so several
// host threads (one per stream) can run disjoint launches concurrently —
// the CPU analogue of independent CUDA streams time-sharing one device's
// SMs. The classic whole-pool run() is the run_on over every worker.
//
// Launch fast path: each OS worker owns a cache-line-aligned mailbox with
// its own generation counter. The launching thread publishes the task and
// bumps the mailbox generations; workers spin on their own counter (pause,
// then yield), parking on the futex (std::atomic::wait) only when a launch
// doesn't arrive promptly. Completion is the mirror image: a per-task
// remaining-count the launcher spins on, parking only as a last resort. In a
// launch-dense phase — every coloring iteration is one — neither side
// touches a mutex, a condition variable, or the allocator: the job travels
// as a two-word FunctionRef, and wake syscalls happen only when a peer
// actually parked. This is what makes per-launch overhead (the paper's
// "kernel launch / global sync" cost) small enough that launch *count*
// differences between algorithms, not launch bookkeeping, dominate.

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "sim/function_ref.hpp"

namespace gcol::sim {

/// A fixed-size pool of worker threads that repeatedly execute "jobs".
///
/// A job is a callable invoked once per participating slot with a local slot
/// id; slot 0 always executes on the calling thread, so a 1-slot launch
/// degenerates to plain serial execution with no synchronization overhead.
/// run()/run_on() block until every slot has finished — the same semantics
/// as a CUDA kernel launch followed by a stream synchronize.
class ThreadPool {
 public:
  /// Creates `num_threads` worker slots. Values < 1 are clamped to 1.
  /// Slot 0 is the caller's thread; only `num_threads - 1` OS threads spawn.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker slots (including the caller's slot 0).
  [[nodiscard]] unsigned size() const noexcept { return num_slots_; }

  /// Executes job(slot) once for every slot in [0, size()), blocking until
  /// all slots complete. The callable is borrowed, not copied — it must stay
  /// alive until run() returns (always true for the lambda-argument idiom).
  /// Exceptions thrown by any slot are captured; the lowest-slot one is
  /// rethrown on the calling thread after the barrier. Not reentrant: run()
  /// must not be called from inside a job, and whole-pool runs must not
  /// overlap each other or any run_on.
  void run(FunctionRef<void(unsigned)> job);

  /// Partitioned launch: executes job(local) for local in [0, count) where
  /// local 0 runs on the calling thread and local i (i >= 1) runs on OS
  /// worker `first + i - 1`. Blocks until all `count` slots complete and
  /// rethrows the lowest-local-slot exception, exactly like run().
  ///
  /// Concurrency contract: run_on calls whose worker ranges are DISJOINT may
  /// execute concurrently from different calling threads (each range
  /// barriers independently); calls sharing any worker must be serialized by
  /// the caller. `first` must be >= 1 and `first + count - 1 <= size()`
  /// whenever count > 1; count <= 1 runs inline and ignores `first`.
  void run_on(unsigned first, unsigned count, FunctionRef<void(unsigned)> job);

 private:
  /// Per-launch completion state, owned by the pool and indexed by the first
  /// OS worker of the launch's range. Disjoint concurrent ranges have
  /// distinct first workers, so they never share a slot; reusing a slot
  /// across back-to-back launches is safe because the launcher only returns
  /// once remaining hits 0 — a straggling worker can at most issue a
  /// harmless spurious notify on the successor task's atomics.
  struct alignas(64) TaskSlot {
    FunctionRef<void(unsigned)> job;
    std::atomic<unsigned> remaining{0};
    std::atomic<bool> launcher_parked{false};
    std::atomic<bool> had_error{false};
  };

  /// Per-OS-worker launch mailbox. gen is the worker's private
  /// sense-reversing barrier: the worker sleeps while it equals the value it
  /// last served. 32-bit so std::atomic::wait maps to a bare futex
  /// (wraparound is harmless — equality is all that matters, and a worker
  /// can never fall a full 2^32 launches behind because its launcher joins
  /// every launch). task/local are plain data published by the generation
  /// bump (release) and read under the worker's acquire load.
  struct alignas(64) Mailbox {
    std::atomic<std::uint32_t> gen{0};
    /// Worker parked on gen; the launcher skips the wake syscall when 0.
    std::atomic<std::uint32_t> parked{0};
    TaskSlot* task = nullptr;
    unsigned local = 0;
  };

  void worker_loop(unsigned worker);
  /// Rethrows the lowest-slot captured exception for a finished launch and
  /// resets its error state. `caller_error` is local slot 0's exception.
  void rethrow_first_error(unsigned first, unsigned count,
                           std::exception_ptr caller_error);

  unsigned num_slots_;
  // Spin budgets chosen at construction: oversubscribed pools (more slots
  // than cores) skip pause spinning and park sooner — see thread_pool.cpp.
  int pause_spins_ = 0;
  int yield_spins_ = 0;
  std::atomic<bool> shutdown_{false};
  std::unique_ptr<Mailbox[]> mailboxes_;  ///< indexed by OS worker [1, size)
  std::unique_ptr<TaskSlot[]> tasks_;     ///< indexed by range-first worker
  // Per-worker exception capture: no lock needed, each worker owns its
  // entry; publication rides the task's remaining release/acquire edge.
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> threads_;
};

}  // namespace gcol::sim
