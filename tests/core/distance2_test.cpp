#include "core/distance2.hpp"

#include <gtest/gtest.h>

#include "../testing/fixtures.hpp"
#include "core/verify.hpp"
#include "graph/generators/erdos_renyi.hpp"
#include "graph/generators/grid.hpp"
#include "graph/generators/rgg.hpp"

namespace gcol::color {
namespace {

using namespace gcol::testing;

class Distance2Test : public ::testing::TestWithParam<bool> {
 protected:
  Distance2Options options() const {
    Distance2Options o;
    o.parallel = GetParam();
    return o;
  }
};

TEST_P(Distance2Test, ValidOnFixtures) {
  const graph::Csr fixtures[] = {
      empty_graph(0),     empty_graph(5),   path_graph(12),
      cycle_graph(9),     clique_graph(6),  star_graph(15),
      petersen_graph(),   disconnected_graph(),
  };
  for (const auto& csr : fixtures) {
    const Coloring result = distance2_color(csr, options());
    EXPECT_TRUE(is_valid_distance2_coloring(csr, result.colors))
        << "n=" << csr.num_vertices;
    // A distance-2 coloring is a fortiori a proper distance-1 coloring.
    if (csr.num_vertices > 0) {
      EXPECT_TRUE(is_valid_coloring(csr, result.colors));
    }
  }
}

TEST_P(Distance2Test, RespectsLowerBound) {
  const auto csr = graph::build_csr(graph::generate_rgg(9, {.seed = 3}));
  const Coloring result = distance2_color(csr, options());
  EXPECT_GE(result.num_colors, distance2_lower_bound(csr));
}

TEST_P(Distance2Test, StarNeedsNColors) {
  // Center + leaves are pairwise within distance 2: K_n effectively.
  const auto csr = star_graph(8);
  EXPECT_EQ(distance2_color(csr, options()).num_colors, 8);
}

TEST_P(Distance2Test, PathStaysNearOptimal) {
  // A path's optimal distance-2 coloring is 3-periodic; sequential
  // first-fit finds it exactly, randomized parallel rounds may spend one
  // extra color.
  const auto csr = path_graph(20);
  const Coloring result = distance2_color(csr, options());
  EXPECT_TRUE(is_valid_distance2_coloring(csr, result.colors));
  if (options().parallel) {
    EXPECT_LE(result.num_colors, 5);
    EXPECT_GE(result.num_colors, 3);
  } else {
    EXPECT_EQ(result.num_colors, 3);
  }
}

TEST_P(Distance2Test, ValidOnRandomGraphs) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto csr =
        graph::build_csr(graph::generate_erdos_renyi(300, 900, seed));
    const Coloring result = distance2_color(csr, options());
    EXPECT_TRUE(is_valid_distance2_coloring(csr, result.colors));
  }
}

TEST_P(Distance2Test, GridDistance2IsCompact) {
  // 5-point grid: distance-2 neighborhood has <= 12 vertices; the coloring
  // should stay near the lower bound of 5.
  const auto csr = graph::build_csr(graph::generate_grid2d(20, 20));
  const Coloring result = distance2_color(csr, options());
  EXPECT_TRUE(is_valid_distance2_coloring(csr, result.colors));
  EXPECT_GE(result.num_colors, 5);
  EXPECT_LE(result.num_colors, 13);
}

INSTANTIATE_TEST_SUITE_P(SequentialAndParallel, Distance2Test,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& p) {
                           return p.param ? "Parallel" : "Sequential";
                         });

TEST(Distance2, ParallelDeterministicForSeed) {
  const auto csr = graph::build_csr(graph::generate_rgg(9, {.seed = 5}));
  Distance2Options options;
  options.seed = 9;
  EXPECT_EQ(distance2_color(csr, options).colors,
            distance2_color(csr, options).colors);
}

TEST(Distance2, VerifierRejectsDistance2Conflict) {
  // Path 0-1-2: colors {0,1,0} are distance-1 proper but distance-2 invalid.
  const auto csr = path_graph(3);
  const std::vector<std::int32_t> colors = {0, 1, 0};
  EXPECT_TRUE(is_valid_coloring(csr, colors));
  EXPECT_FALSE(is_valid_distance2_coloring(csr, colors));
}

TEST(Distance2, VerifierRejectsUncolored) {
  const auto csr = path_graph(2);
  EXPECT_FALSE(is_valid_distance2_coloring(
      csr, std::vector<std::int32_t>{0, kUncolored}));
}

}  // namespace
}  // namespace gcol::color
