// Frontier-mode equivalence suite: for every registered algorithm, the
// frontier representation / traversal direction (sparse compacted lists,
// bitmap forced-push, bitmap forced-pull, occupancy-adaptive auto) must be
// an implementation detail — the colors must come out byte-identical to the
// sparse-list reference and pass the independent verifier. The binary runs
// under whatever GCOL_THREADS the harness sets; tests/CMakeLists.txt
// registers it at 1 worker (where every algorithm is deterministic, so the
// identity check is exact for all of them) and 4 workers (real concurrency;
// the raced proposal/resolution algorithms are verify-only there, same
// exclusion as the determinism property test). The TSan CI job runs both,
// so the bitmap kernels' word-owner writes and atomic-OR publishes get
// race-checked under every direction.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/registry.hpp"
#include "core/verify.hpp"
#include "graph/build.hpp"
#include "graph/generators/erdos_renyi.hpp"
#include "graph/generators/rgg.hpp"
#include "gunrock/frontier.hpp"
#include "sim/device.hpp"

namespace gcol::color {
namespace {

enum class Family { kErdosRenyi, kRgg };

const char* family_name(Family family) {
  switch (family) {
    case Family::kErdosRenyi: return "Gnm";
    case Family::kRgg: return "Rgg";
  }
  return "Unknown";
}

graph::Csr make_graph(Family family) {
  switch (family) {
    case Family::kErdosRenyi:
      // Sparse enough that shrinking frontiers stay in push territory for a
      // while before any pull crossover: exercises the adaptive switch.
      return graph::build_csr(graph::generate_erdos_renyi(600, 3000, 42));
    case Family::kRgg:
      return graph::build_csr(graph::generate_rgg(9, {.seed = 7}));
  }
  return {};
}

Coloring run(const AlgorithmSpec& spec, const graph::Csr& csr,
             gr::FrontierMode mode) {
  Options options;
  options.seed = 99;
  options.frontier_mode = mode;
  return spec.run(csr, options);
}

/// Bitwise identity across representations only holds when the algorithm
/// itself is deterministic under the current worker count; the raced
/// proposal/resolution algorithms are checked for validity only on
/// multi-worker devices (mirrors property_test's DeterministicForSeed).
bool raced_on_multiworker(const std::string& name) {
  return sim::Device::instance().num_workers() > 1 &&
         (name == "gunrock_hash" || name == "gm_speculative");
}

using Param = std::tuple<std::string, Family, gr::FrontierMode>;

class FrontierModeTest : public ::testing::TestWithParam<Param> {};

TEST_P(FrontierModeTest, MatchesSparseReference) {
  const auto& [algorithm_name, family, mode] = GetParam();
  const AlgorithmSpec* spec = find_algorithm(algorithm_name);
  ASSERT_NE(spec, nullptr);
  const graph::Csr csr = make_graph(family);

  const Coloring result = run(*spec, csr, mode);
  ASSERT_EQ(result.colors.size(), static_cast<std::size_t>(csr.num_vertices));
  const auto violation = find_violation(csr, result.colors);
  EXPECT_FALSE(violation.has_value())
      << algorithm_name << " (" << gr::to_string(mode) << ") on "
      << family_name(family) << ": violation at vertex "
      << (violation ? violation->vertex : -1);
  EXPECT_EQ(result.num_colors, count_colors(result.colors));

  if (raced_on_multiworker(algorithm_name)) {
    GTEST_SKIP() << "raced algorithm on multi-worker device: verify-only";
  }
  const Coloring reference = run(*spec, csr, gr::FrontierMode::kSparse);
  EXPECT_EQ(result.colors, reference.colors)
      << algorithm_name << " (" << gr::to_string(mode)
      << ") diverged from the sparse-list reference on "
      << family_name(family);
}

std::vector<Param> make_params() {
  std::vector<Param> params;
  const Family families[] = {Family::kErdosRenyi, Family::kRgg};
  const gr::FrontierMode modes[] = {
      gr::FrontierMode::kSparse, gr::FrontierMode::kBitmapPush,
      gr::FrontierMode::kBitmapPull, gr::FrontierMode::kAuto};
  for (const AlgorithmSpec& spec : all_algorithms()) {
    for (const Family family : families) {
      for (const gr::FrontierMode mode : modes) {
        params.emplace_back(spec.name, family, mode);
      }
    }
  }
  return params;
}

std::string mode_tag(gr::FrontierMode mode) {
  switch (mode) {
    case gr::FrontierMode::kSparse: return "sparse";
    case gr::FrontierMode::kBitmapPush: return "push";
    case gr::FrontierMode::kBitmapPull: return "pull";
    case gr::FrontierMode::kAuto: return "auto";
  }
  return "unknown";
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllModes, FrontierModeTest, ::testing::ValuesIn(make_params()),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      // No structured bindings here: the macro would split on their commas.
      return std::get<0>(param_info.param) + "_" +
             family_name(std::get<1>(param_info.param)) + "_" +
             mode_tag(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace gcol::color
