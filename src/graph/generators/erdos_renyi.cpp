#include "graph/generators/erdos_renyi.hpp"

#include <stdexcept>

#include "sim/rng.hpp"

namespace gcol::graph {

Coo generate_erdos_renyi(vid_t num_vertices, eid_t num_edges,
                         std::uint64_t seed) {
  if (num_vertices < 0 || num_edges < 0) {
    throw std::invalid_argument("generate_erdos_renyi: negative size");
  }
  Coo coo;
  coo.num_vertices = num_vertices;
  if (num_vertices < 2) return coo;
  coo.reserve(static_cast<std::size_t>(num_edges));
  const sim::CounterRng rng(seed);
  const auto n = static_cast<std::uint64_t>(num_vertices);
  for (eid_t e = 0; e < num_edges; ++e) {
    const auto c = static_cast<std::uint64_t>(e);
    const auto u = static_cast<vid_t>(rng.uniform_below(2 * c, n));
    const auto v = static_cast<vid_t>(rng.uniform_below(2 * c + 1, n));
    coo.add_edge(u, v);  // self loops / duplicates removed by build_csr
  }
  return coo;
}

}  // namespace gcol::graph
