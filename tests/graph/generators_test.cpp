#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/build.hpp"
#include "graph/generators/banded.hpp"
#include "graph/generators/erdos_renyi.hpp"
#include "graph/generators/grid.hpp"
#include "graph/generators/mesh.hpp"
#include "graph/generators/random_regular.hpp"
#include "graph/generators/rgg.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/stats.hpp"
#include "sim/rng.hpp"

namespace gcol::graph {
namespace {

// ---- RGG -------------------------------------------------------------

TEST(Rgg, DeterministicForSeed) {
  const Csr a = build_csr(generate_rgg(10, {.seed = 5}));
  const Csr b = build_csr(generate_rgg(10, {.seed = 5}));
  EXPECT_EQ(a.col_indices, b.col_indices);
  const Csr c = build_csr(generate_rgg(10, {.seed = 6}));
  EXPECT_NE(a.col_indices, c.col_indices);
}

TEST(Rgg, AverageDegreeNearLogN) {
  const Csr csr = build_csr(generate_rgg(13));
  const double expected = std::log(static_cast<double>(csr.num_vertices));
  // Boundary effects pull the mean below ln n; allow a generous band.
  EXPECT_GT(csr.average_degree(), 0.7 * expected);
  EXPECT_LT(csr.average_degree(), 1.1 * expected);
}

TEST(Rgg, EdgesRespectRadius) {
  // Regenerate the same point cloud and verify adjacency against a brute
  // force O(n^2) check on a small instance.
  const int scale = 7;
  const auto n = std::size_t{1} << scale;
  const sim::CounterRng rng(1);
  std::vector<float> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(rng.uniform_double(2 * i));
    y[i] = static_cast<float>(rng.uniform_double(2 * i + 1));
  }
  const double radius = std::sqrt(std::log(static_cast<double>(n)) /
                                  (3.14159265358979323846 * static_cast<double>(n)));
  const Csr csr = build_csr(generate_rgg(scale, {.seed = 1}));
  eid_t expected_edges = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double dx = static_cast<double>(x[a]) - static_cast<double>(x[b]);
      const double dy = static_cast<double>(y[a]) - static_cast<double>(y[b]);
      if (dx * dx + dy * dy <= radius * radius) expected_edges += 2;
    }
  }
  EXPECT_EQ(csr.num_edges(), expected_edges);
}

TEST(Rgg, ScaleValidation) {
  EXPECT_THROW(generate_rgg(0), std::invalid_argument);
  EXPECT_THROW(generate_rgg(31), std::invalid_argument);
}

TEST(Rgg, TinyInstances) {
  EXPECT_EQ(generate_rgg_n(0).num_edges(), 0u);
  EXPECT_EQ(generate_rgg_n(1).num_edges(), 0u);
}

// ---- grids -----------------------------------------------------------

TEST(Grid, FivePointDegrees) {
  const Csr csr = build_csr(generate_grid2d(4, 3));
  EXPECT_EQ(csr.num_vertices, 12);
  // corners 2, edges 3, interior 4
  EXPECT_EQ(csr.degree(0), 2);
  EXPECT_EQ(csr.degree(1), 3);
  EXPECT_EQ(csr.degree(5), 4);
  // |E| for w x h grid: h*(w-1) + w*(h-1) = 3*3 + 4*2 = 17
  EXPECT_EQ(csr.num_undirected_edges(), 17);
}

TEST(Grid, NinePointInteriorDegreeIsEight) {
  const Csr csr = build_csr(generate_grid2d(5, 5, Stencil2d::kNinePoint));
  EXPECT_EQ(csr.degree(12), 8);  // center vertex
  EXPECT_EQ(csr.degree(0), 3);   // corner
}

TEST(Grid, SevenPoint3dInteriorDegreeIsSix) {
  const Csr csr = build_csr(generate_grid3d(3, 3, 3));
  EXPECT_EQ(csr.num_vertices, 27);
  EXPECT_EQ(csr.degree(13), 6);  // center of the cube
  EXPECT_EQ(csr.degree(0), 3);   // corner
}

TEST(Grid, TwentySevenPoint3dInteriorDegree) {
  const Csr csr =
      build_csr(generate_grid3d(3, 3, 3, Stencil3d::kTwentySevenPoint));
  EXPECT_EQ(csr.degree(13), 26);
  EXPECT_EQ(csr.degree(0), 7);
}

TEST(Grid, DegenerateDimensions) {
  EXPECT_EQ(build_csr(generate_grid2d(0, 5)).num_vertices, 0);
  EXPECT_EQ(build_csr(generate_grid2d(1, 5)).num_undirected_edges(), 4);
  EXPECT_EQ(build_csr(generate_grid3d(1, 1, 1)).num_edges(), 0);
}

// ---- banded ------------------------------------------------------------

TEST(Banded, InteriorDegreeIsTwiceBandwidth) {
  const Csr csr = build_csr(
      generate_banded(100, {.half_bandwidth = 4, .offband_per_vertex = 0.0}));
  EXPECT_EQ(csr.degree(50), 8);
  EXPECT_EQ(csr.degree(0), 4);
}

TEST(Banded, OffbandRaisesAverageDegree) {
  // Keep the reach well inside the matrix so almost no draw falls off the
  // trailing boundary; each off-band edge adds 2 to the summed degree.
  const Csr without = build_csr(generate_banded(
      5000,
      {.half_bandwidth = 4, .offband_per_vertex = 0.0, .offband_reach = 64}));
  const Csr with = build_csr(generate_banded(
      5000,
      {.half_bandwidth = 4, .offband_per_vertex = 2.0, .offband_reach = 64}));
  EXPECT_NEAR(with.average_degree() - without.average_degree(), 4.0, 0.5);
}

TEST(Banded, Deterministic) {
  const Csr a = build_csr(generate_banded(1000, {.seed = 3}));
  const Csr b = build_csr(generate_banded(1000, {.seed = 3}));
  EXPECT_EQ(a.col_indices, b.col_indices);
}

// ---- mesh ----------------------------------------------------------------

TEST(Mesh, InteriorDegreeAboutSix) {
  const Csr csr = build_csr(generate_mesh2d(50, 50));
  EXPECT_NEAR(csr.average_degree(), 6.0, 0.5);
}

TEST(Mesh, SecondRingRaisesDegree) {
  const Csr base = build_csr(generate_mesh2d(50, 50));
  const Csr enriched = build_csr(
      generate_mesh2d(50, 50, {.second_ring_probability = 0.5}));
  EXPECT_GT(enriched.average_degree(), base.average_degree() + 1.0);
}

TEST(Mesh, ContainsAllLatticeEdges) {
  const Csr csr = build_csr(generate_mesh2d(4, 4));
  // Horizontal edge (0,0)-(1,0) and vertical (0,0)-(0,1) must exist.
  const auto adj = csr.neighbors(0);
  EXPECT_TRUE(std::find(adj.begin(), adj.end(), 1) != adj.end());
  EXPECT_TRUE(std::find(adj.begin(), adj.end(), 4) != adj.end());
}

// ---- Erdos-Renyi --------------------------------------------------------

TEST(ErdosRenyi, RoughEdgeCount) {
  const Csr csr = build_csr(generate_erdos_renyi(10000, 30000));
  // Dedup + self-loop removal shaves a little.
  EXPECT_GT(csr.num_undirected_edges(), 29000);
  EXPECT_LE(csr.num_undirected_edges(), 30000);
}

TEST(ErdosRenyi, TinyInstances) {
  EXPECT_EQ(build_csr(generate_erdos_renyi(0, 0)).num_vertices, 0);
  EXPECT_EQ(build_csr(generate_erdos_renyi(1, 10)).num_edges(), 0);
}

// ---- R-MAT -----------------------------------------------------------------

TEST(Rmat, PowerLawSkew) {
  const Csr csr = build_csr(generate_rmat(12, 8));
  const DegreeStats stats = degree_stats(csr);
  // Hubs far above the mean are the signature of the skewed distribution.
  EXPECT_GT(stats.max_degree, 8 * stats.average_degree);
}

TEST(Rmat, RejectsBadProbabilities) {
  EXPECT_THROW(generate_rmat(5, 8, {.a = 0.9, .b = 0.9, .c = 0.9}),
               std::invalid_argument);
}

// ---- random regular -------------------------------------------------------

TEST(RandomRegular, DegreesConcentrated) {
  const Csr csr = build_csr(generate_random_regular(2000, 8));
  const DegreeStats stats = degree_stats(csr);
  EXPECT_NEAR(stats.average_degree, 8.0, 0.3);
  EXPECT_LE(stats.max_degree, 8);  // union of 4 cycles: at most 8
  EXPECT_GE(stats.min_degree, 4);
}

TEST(RandomRegular, ZeroDegreeGivesNoEdges) {
  EXPECT_EQ(build_csr(generate_random_regular(100, 0)).num_edges(), 0);
}

}  // namespace
}  // namespace gcol::graph
