#pragma once
// Parallel prefix sums — the CPU analogue of cub::DeviceScan. Scans back
// frontier compaction and CSR construction, just as they do in Gunrock and
// GraphBLAST on the GPU.
//
// Three-phase scheme (the classic GPU decomposition):
//   1. one launch ("sim::scan_partials"): each worker sums its block,
//   2. serial exclusive scan over the per-worker sums,
//   3. one launch ("sim::scan_apply"): each worker scans its block seeded
//      with its offset.
// The per-worker block sums live in the device scratch arena, so a scan in a
// hot loop performs no allocation.
//
// Traffic model (observed launches): scan_partials reads its block and
// writes one block sum; scan_apply reads its block plus its seed and writes
// the block back out. The serial small-n/1-worker fallback issues no launch
// and therefore models nothing.

#include <cstdint>
#include <span>

#include "sim/device.hpp"
#include "sim/scratch.hpp"
#include "sim/simd.hpp"
#include "sim/slot_range.hpp"

namespace gcol::sim {

namespace detail {
/// Per-slot modeled traffic of the two scan phases over n elements of T.
template <typename T>
[[nodiscard]] inline auto scan_partials_traffic(std::int64_t n) {
  return [n](unsigned slot, unsigned num_slots) {
    const auto [begin, end] = slot_range(slot, num_slots, n);
    constexpr auto kElem = static_cast<std::int64_t>(sizeof(T));
    return Traffic{(end - begin) * kElem, kElem};
  };
}
template <typename T>
[[nodiscard]] inline auto scan_apply_traffic(std::int64_t n) {
  return [n](unsigned slot, unsigned num_slots) {
    const auto [begin, end] = slot_range(slot, num_slots, n);
    constexpr auto kElem = static_cast<std::int64_t>(sizeof(T));
    return Traffic{(end - begin) * kElem + kElem, (end - begin) * kElem};
  };
}
}  // namespace detail

/// Exclusive prefix sum: out[i] = sum of in[0..i). `out` may alias `in`.
/// Returns the total sum of `in`.
template <typename T>
T exclusive_scan(Device& device, std::span<const T> in, std::span<T> out) {
  const auto n = static_cast<std::int64_t>(in.size());
  if (n == 0) return T{0};
  const unsigned workers = device.num_workers();
  if (workers == 1 || n < 1024) {
    T acc{0};
    for (std::int64_t i = 0; i < n; ++i) {
      const T value = in[static_cast<std::size_t>(i)];
      out[static_cast<std::size_t>(i)] = acc;
      acc = static_cast<T>(acc + value);
    }
    return acc;
  }

  // The partials phase is order-free (one total per block), so it runs
  // through the SIMD wide sum for 64-bit integers; only the apply phase
  // needs the serial element order.
  const std::span<T> block_sums =
      device.scratch().template get<T>(ScratchLane::kBlockSums, workers);
  device.launch_slots("sim::scan_partials",
                      [&](unsigned slot, unsigned num_slots) {
                        const auto [begin, end] = slot_range(slot, num_slots, n);
                        block_sums[slot] = simd::sum_span<T>(in.subspan(
                            static_cast<std::size_t>(begin),
                            static_cast<std::size_t>(end - begin)));
                      },
                      nullptr, detail::scan_partials_traffic<T>(n));

  T total{0};
  for (unsigned slot = 0; slot < workers; ++slot) {
    const T sum = block_sums[slot];
    block_sums[slot] = total;
    total = static_cast<T>(total + sum);
  }

  device.launch_slots("sim::scan_apply",
                      [&](unsigned slot, unsigned num_slots) {
                        const auto [begin, end] = slot_range(slot, num_slots, n);
                        T acc = block_sums[slot];
                        for (std::int64_t i = begin; i < end; ++i) {
                          const T value = in[static_cast<std::size_t>(i)];
                          out[static_cast<std::size_t>(i)] = acc;
                          acc = static_cast<T>(acc + value);
                        }
                      },
                      nullptr, detail::scan_apply_traffic<T>(n));
  return total;
}

/// Inclusive prefix sum: out[i] = sum of in[0..i]. `out` may alias `in`.
/// Same three-phase scheme as exclusive_scan.
template <typename T>
T inclusive_scan(Device& device, std::span<const T> in, std::span<T> out) {
  const auto n = static_cast<std::int64_t>(in.size());
  if (n == 0) return T{0};
  const unsigned workers = device.num_workers();
  if (workers == 1 || n < 1024) {
    T acc{0};
    for (std::int64_t i = 0; i < n; ++i) {
      acc = static_cast<T>(acc + in[static_cast<std::size_t>(i)]);
      out[static_cast<std::size_t>(i)] = acc;
    }
    return acc;
  }

  const std::span<T> block_sums =
      device.scratch().template get<T>(ScratchLane::kBlockSums, workers);
  device.launch_slots("sim::scan_partials",
                      [&](unsigned slot, unsigned num_slots) {
                        const auto [begin, end] = slot_range(slot, num_slots, n);
                        block_sums[slot] = simd::sum_span<T>(in.subspan(
                            static_cast<std::size_t>(begin),
                            static_cast<std::size_t>(end - begin)));
                      },
                      nullptr, detail::scan_partials_traffic<T>(n));

  T total{0};
  for (unsigned slot = 0; slot < workers; ++slot) {
    const T sum = block_sums[slot];
    block_sums[slot] = total;
    total = static_cast<T>(total + sum);
  }

  device.launch_slots("sim::scan_apply",
                      [&](unsigned slot, unsigned num_slots) {
                        const auto [begin, end] = slot_range(slot, num_slots, n);
                        T acc = block_sums[slot];
                        for (std::int64_t i = begin; i < end; ++i) {
                          acc = static_cast<T>(
                              acc + in[static_cast<std::size_t>(i)]);
                          out[static_cast<std::size_t>(i)] = acc;
                        }
                      },
                      nullptr, detail::scan_apply_traffic<T>(n));
  return total;
}

}  // namespace gcol::sim
