#include "core/distance2.hpp"

#include <algorithm>
#include <vector>

#include "core/verify.hpp"
#include "gunrock/enactor.hpp"
#include "gunrock/frontier.hpp"
#include "gunrock/operators.hpp"
#include "obs/trace.hpp"
#include "sim/atomics.hpp"
#include "sim/rng.hpp"
#include "sim/timer.hpp"

namespace gcol::color {

namespace {

/// Calls f(u) for every distinct u != v within distance 2 of v. May visit a
/// vertex more than once; f must be idempotent-safe.
template <typename F>
void for_each_distance2(const graph::Csr& csr, vid_t v, F f) {
  for (const vid_t u : csr.neighbors(v)) {
    f(u);
    for (const vid_t w : csr.neighbors(u)) {
      if (w != v) f(w);
    }
  }
}

}  // namespace

std::int32_t distance2_lower_bound(const graph::Csr& csr) {
  return csr.num_vertices == 0 ? 0 : csr.max_degree() + 1;
}

bool is_valid_distance2_coloring(const graph::Csr& csr,
                                 std::span<const std::int32_t> colors) {
  if (colors.size() != static_cast<std::size_t>(csr.num_vertices)) {
    return false;
  }
  for (vid_t v = 0; v < csr.num_vertices; ++v) {
    const std::int32_t cv = colors[static_cast<std::size_t>(v)];
    if (cv < 0) return false;
    bool conflict = false;
    for_each_distance2(csr, v, [&](vid_t u) {
      if (colors[static_cast<std::size_t>(u)] == cv) conflict = true;
    });
    if (conflict) return false;
  }
  return true;
}

Coloring distance2_color(const graph::Csr& csr,
                         const Distance2Options& options) {
  const vid_t n = csr.num_vertices;
  const auto un = static_cast<std::size_t>(n);
  auto& device = sim::Device::instance();

  Coloring result;
  result.algorithm = options.parallel ? "distance2_jp" : "distance2_greedy";
  result.colors.assign(un, kUncolored);
  if (n == 0) return result;

  std::int32_t* colors = result.colors.data();
  const sim::Stopwatch watch;

  // The distance-2 neighborhood has size <= max_degree^2; first-fit always
  // finds a color within it.
  auto min_available = [&](vid_t v, const std::int32_t* read_colors) {
    // Bounded bitmap over candidate colors [0, d2_bound].
    std::vector<std::uint64_t> forbidden;
    std::size_t bound = 64;
    forbidden.assign(bound / 64, 0);
    auto mark = [&](std::int32_t c) {
      if (c < 0) return;
      const auto uc = static_cast<std::size_t>(c);
      if (uc >= bound) {
        bound = (uc / 64 + 1) * 64;
        forbidden.resize(bound / 64, 0);
      }
      forbidden[uc / 64] |= std::uint64_t{1} << (uc % 64);
    };
    for_each_distance2(csr, v, [&](vid_t u) {
      mark(read_colors[static_cast<std::size_t>(u)]);
    });
    std::int32_t c = 0;
    while (static_cast<std::size_t>(c) < bound &&
           (forbidden[static_cast<std::size_t>(c) / 64] >>
                (static_cast<std::size_t>(c) % 64) &
            1u)) {
      ++c;
    }
    return c;
  };

  if (!options.parallel) {
    for (vid_t v = 0; v < n; ++v) {
      colors[static_cast<std::size_t>(v)] = min_available(v, colors);
    }
    result.iterations = 1;
  } else {
    std::vector<std::int64_t> priority(un);
    const sim::CounterRng rng(options.seed, 0xD257);
    device.launch("distance2::priority_init", n, [&](std::int64_t v) {
      priority[static_cast<std::size_t>(v)] =
          (static_cast<std::int64_t>(
               rng.uniform_int31(static_cast<std::uint64_t>(v)))
           << 32) |
          static_cast<std::int64_t>(v);
    });

    gr::Frontier frontier = gr::Frontier::all(n);
    // Snapshot-based rounds: all reads target the previous round's colors,
    // making the result deterministic for any worker interleaving.
    std::vector<std::int32_t> snapshot(result.colors);
    const std::uint64_t launches_before = device.launch_count();
    gr::Enactor enactor(device, options.max_iterations);
    const gr::EnactorStats stats = enactor.enact([&](std::int32_t) {
      const obs::ScopedPhase phase("distance2::round");
      gr::compute(device, frontier, [&](vid_t v) {
        const auto uv = static_cast<std::size_t>(v);
        if (snapshot[uv] != kUncolored) return;
        const std::int64_t mine = priority[uv];
        bool blocked = false;
        for_each_distance2(csr, v, [&](vid_t u) {
          if (!blocked &&
              snapshot[static_cast<std::size_t>(u)] == kUncolored &&
              priority[static_cast<std::size_t>(u)] > mine) {
            blocked = true;
          }
        });
        if (blocked) return;
        colors[uv] = min_available(v, snapshot.data());
      });
      device.launch("distance2::publish_snapshot", n, [&](std::int64_t i) {
        snapshot[static_cast<std::size_t>(i)] =
            colors[static_cast<std::size_t>(i)];
      });
      frontier = gr::filter(device, frontier, [&](vid_t v) {
        return colors[static_cast<std::size_t>(v)] == kUncolored;
      });
      return !frontier.is_empty();
    });
    result.iterations = stats.iterations;
    result.kernel_launches = device.launch_count() - launches_before;
  }

  result.elapsed_ms = watch.elapsed_ms();
  result.num_colors = count_colors(result.colors);
  return result;
}

}  // namespace gcol::color
