#include "common/bench_util.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/verify.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"
#include "sim/device.hpp"
#include "sim/simd.hpp"
#include "sim/timer.hpp"

namespace gcol::bench {

namespace {

[[noreturn]] void usage_and_exit(const char* program) {
  std::printf(
      "usage: %s [--scale=F] [--runs=N] [--csv] [--min-rgg=N] [--max-rgg=N] "
      "[--seed=N] [--json PATH] [--trace PATH] [--datasets=A,B]\n"
      "  --scale=F    dataset size as a fraction of the paper's (default "
      "0.03; 1.0 = full size)\n"
      "  --runs=N     timed repetitions to average (default 3; paper used "
      "10)\n"
      "  --csv        machine-readable CSV output\n"
      "  --min-rgg=N  smallest RGG scale for the Figure 3 sweep (default "
      "12)\n"
      "  --max-rgg=N  largest RGG scale for the Figure 3 sweep (default 17; "
      "paper used 24)\n"
      "  --seed=N     RNG seed (default 1)\n"
      "  --batch=N    batched-throughput mode: color N copies of each graph "
      "as one multi-stream batch and compare against N sequential runs "
      "(default 0 = classic mode)\n"
      "  --json PATH  also write a gcol-bench-v7 JSON report to PATH\n"
      "  --trace PATH also write a Chrome trace-event JSON (open in "
      "ui.perfetto.dev)\n"
      "  --datasets=A,B  only run the named datasets (default: all)\n"
      "  --algorithms=A,B  run the named registry algorithms (default: the "
      "paper's nine Figure-1 series)\n"
      "  --frontier=M frontier policy for the frontier-driven algorithms: "
      "sparse | bitmap-push | bitmap-pull | auto (default auto)\n"
      "  --reorder=S  cache-aware CSR relabeling applied (and un-permuted) "
      "inside every measured run: identity | degree_sort | dbg | bfs "
      "(default identity)\n"
      "  --hw-counters  sample perf_event hardware counters around every "
      "observed launch (Linux; silently degrades to modeled-traffic-only "
      "when perf_event_open is denied)\n"
      "  --graph-replay  capture each algorithm's per-iteration kernel DAG "
      "once and replay it with dependency-elided barriers (identical "
      "colors; fewer barriers + less dispatch overhead)\n",
      program);
  std::exit(2);
}

/// Arms process-lifetime hardware-counter sampling on the global device;
/// returns whether counters are actually available (the value
/// Args::hw_counters and meta.hw_counters report). The sampler is a
/// function-local static so it outlives every launch — harnesses never
/// uninstall it.
bool install_hw_sampling() {
  if (!obs::hw_counters_supported()) return false;
  static obs::PerfSampler sampler;
  sim::Device::instance().set_hw_sampler(&sampler);
  return true;
}

/// The run-environment block of the gcol-bench-v7 header: enough to tell two
/// BENCH_*.json files measured different machines/configs apart before
/// comparing their numbers. Git SHA and build type are baked in at configure
/// time (see bench/CMakeLists.txt); worker count and GCOL_THREADS are read
/// live so the report reflects the actual run. `streams` is the number of
/// device streams the harness scheduled measured work onto (0 for a classic
/// host-only run).
obs::Json run_meta(gr::FrontierMode frontier_mode, unsigned streams,
                   graph::ReorderStrategy reorder, bool hw_counters,
                   bool graph_replay) {
  obs::Json meta = obs::Json::object();
  meta.set("workers",
           static_cast<std::int64_t>(sim::Device::instance().num_workers()));
  const char* threads_env = std::getenv("GCOL_THREADS");
  meta.set("gcol_threads", threads_env == nullptr ? "" : threads_env);
#ifdef GCOL_GIT_SHA
  meta.set("git_sha", GCOL_GIT_SHA);
#else
  meta.set("git_sha", "unknown");
#endif
#ifdef GCOL_BUILD_TYPE
  meta.set("build_type", GCOL_BUILD_TYPE);
#else
  meta.set("build_type", "unknown");
#endif
  // The substrate's default advance policy (gr::AdvancePolicy); recorded so
  // scheduling changes across PRs are visible in the trajectory.
  meta.set("advance_policy", "edge_balanced");
  // The frontier representation/direction policy of the measured runs —
  // BENCH_baseline.json (sparse) vs BENCH_after.json (auto) differ exactly
  // here, and bench_diff keys its per-direction breakdown off it.
  meta.set("frontier_mode", gr::to_string(frontier_mode));
  // v3: how many device streams the measured runs were scheduled onto.
  // 0 marks a classic run (everything on the host's default context), so
  // bench_diff can refuse to compare batched against classic numbers.
  meta.set("streams", static_cast<std::int64_t>(streams));
  // v4: which SIMD backend the binary was compiled against (sim/simd.hpp:
  // avx2 | sse2 | neon | scalar), so a scalar-vs-vector wall-clock delta in
  // the trajectory is attributable to the vector unit, not a code change.
  meta.set("simd", sim::simd_isa());
  // v5: the CSR relabeling strategy the measured runs colored under
  // (graph/reorder.hpp: identity | degree_sort | dbg | bfs). Reordering
  // changes memory locality but not the external coloring contract, so two
  // reports differing only here are the reorder ablation's axis — and
  // bench_diff warns on a mismatch instead of silently mixing layouts.
  meta.set("reorder", graph::to_string(reorder));
  // v6: whether perf_event hardware counters were actually sampled (false
  // covers both "--hw-counters absent" and "passed but denied"), and the
  // machine's measured STREAM-triad peak bandwidth — the roofline ceiling
  // every per-kernel "gbps" in this report is read against.
  meta.set("hw_counters", hw_counters);
  meta.set("peak_gbps", peak_gbps());
  // v7: whether the measured runs executed under launch-graph capture &
  // replay (DESIGN.md §3i). Replay never moves colors or per-kernel launch
  // counts — only barrier intervals — so a replay-vs-eager diff is still
  // meaningful (CI's identity gate IS that comparison); the key makes the
  // mode visible via bench_diff's meta-mismatch warning.
  meta.set("graph_replay", graph_replay);
  return meta;
}

bool parse_kv(const char* arg, const char* key, const char** value) {
  const std::size_t len = std::strlen(key);
  if (std::strncmp(arg, key, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

Args parse_args(int argc, char** argv) {
  Args args;
  // Flags taking a value accept both --flag=value and --flag value.
  auto next_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) usage_and_exit(argv[0]);
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--csv") == 0) {
      args.csv = true;
    } else if (std::strcmp(arg, "--graph-replay") == 0) {
      args.graph_replay = true;
    } else if (std::strcmp(arg, "--hw-counters") == 0) {
      // Arms the device-global sampler right here, so every harness gets
      // hardware attribution without per-harness wiring; resolves to the
      // ACTUAL availability so downstream meta never claims counters that
      // perf_event_open denied.
      args.hw_counters = install_hw_sampling();
    } else if (parse_kv(arg, "--scale", &value)) {
      args.scale = std::atof(value);
    } else if (parse_kv(arg, "--runs", &value)) {
      args.runs = std::atoi(value);
    } else if (parse_kv(arg, "--min-rgg", &value)) {
      args.min_rgg_scale = std::atoi(value);
    } else if (parse_kv(arg, "--max-rgg", &value)) {
      args.max_rgg_scale = std::atoi(value);
    } else if (parse_kv(arg, "--seed", &value)) {
      args.seed = static_cast<std::uint64_t>(std::atoll(value));
    } else if (parse_kv(arg, "--batch", &value)) {
      args.batch = std::atoi(value);
    } else if (parse_kv(arg, "--json", &value)) {
      args.json_path = value;
    } else if (std::strcmp(arg, "--json") == 0) {
      args.json_path = next_value(&i);
    } else if (parse_kv(arg, "--trace", &value)) {
      args.trace_path = value;
    } else if (std::strcmp(arg, "--trace") == 0) {
      args.trace_path = next_value(&i);
    } else if (parse_kv(arg, "--datasets", &value)) {
      args.datasets = value;
    } else if (std::strcmp(arg, "--datasets") == 0) {
      args.datasets = next_value(&i);
    } else if (parse_kv(arg, "--algorithms", &value)) {
      args.algorithms = value;
    } else if (std::strcmp(arg, "--algorithms") == 0) {
      args.algorithms = next_value(&i);
    } else if (parse_kv(arg, "--frontier", &value) ||
               (std::strcmp(arg, "--frontier") == 0 &&
                (value = next_value(&i)) != nullptr)) {
      if (!gr::parse_frontier_mode(value, args.frontier_mode)) {
        std::fprintf(stderr, "unknown frontier mode: %s\n", value);
        usage_and_exit(argv[0]);
      }
    } else if (parse_kv(arg, "--reorder", &value) ||
               (std::strcmp(arg, "--reorder") == 0 &&
                (value = next_value(&i)) != nullptr)) {
      if (!graph::parse_reorder(value, args.reorder)) {
        std::fprintf(stderr, "unknown reorder strategy: %s\n", value);
        usage_and_exit(argv[0]);
      }
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (args.scale <= 0.0 || args.scale > 1.0 || args.runs < 1 ||
      args.min_rgg_scale < 5 || args.max_rgg_scale > 24 ||
      args.min_rgg_scale > args.max_rgg_scale || args.batch < 0) {
    usage_and_exit(argv[0]);
  }
  return args;
}

bool dataset_selected(const Args& args, std::string_view name) {
  if (args.datasets.empty()) return true;
  const std::string_view filter = args.datasets;
  std::size_t begin = 0;
  while (begin <= filter.size()) {
    std::size_t end = filter.find(',', begin);
    if (end == std::string_view::npos) end = filter.size();
    if (filter.substr(begin, end - begin) == name) return true;
    begin = end + 1;
  }
  return false;
}

std::vector<graph::DatasetInfo> selected_datasets(const Args& args) {
  std::vector<graph::DatasetInfo> selected;
  for (const graph::DatasetInfo& info : graph::paper_datasets()) {
    if (dataset_selected(args, info.name)) selected.push_back(info);
  }
  // `rmat_<scale>` tokens name synthetic power-law extras outside the
  // Table I registry; resolve them explicitly, in filter order.
  const std::string_view filter = args.datasets;
  std::size_t begin = 0;
  while (begin < filter.size()) {
    std::size_t end = filter.find(',', begin);
    if (end == std::string_view::npos) end = filter.size();
    const std::string_view token = filter.substr(begin, end - begin);
    begin = end + 1;
    if (token.rfind("rmat_", 0) != 0) continue;
    const std::string_view digits = token.substr(5);
    int scale = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), scale);
    if (ec != std::errc{} || ptr != digits.data() + digits.size() ||
        scale < 8 || scale > 24) {
      std::fprintf(stderr,
                   "bad dataset token '%.*s': expected rmat_<scale> with "
                   "scale in [8, 24]\n",
                   static_cast<int>(token.size()), token.data());
      std::exit(1);
    }
    selected.push_back(graph::rmat_dataset(scale));
  }
  return selected;
}

std::vector<const color::AlgorithmSpec*> selected_algorithms(
    const Args& args) {
  if (args.algorithms.empty()) return color::figure1_algorithms();
  std::vector<const color::AlgorithmSpec*> selected;
  const std::string_view filter = args.algorithms;
  std::size_t begin = 0;
  while (begin <= filter.size()) {
    std::size_t end = filter.find(',', begin);
    if (end == std::string_view::npos) end = filter.size();
    const std::string name(filter.substr(begin, end - begin));
    if (!name.empty()) {
      const color::AlgorithmSpec* spec = color::find_algorithm(name);
      if (spec == nullptr) {
        std::fprintf(stderr, "unknown algorithm: %s\n", name.c_str());
        std::exit(2);
      }
      selected.push_back(spec);
    }
    begin = end + 1;
  }
  if (selected.empty()) {
    std::fprintf(stderr, "--algorithms selected nothing\n");
    std::exit(2);
  }
  return selected;
}

Measurement run_averaged(const color::AlgorithmSpec& spec,
                         const graph::Csr& csr, std::uint64_t seed, int runs,
                         gr::FrontierMode mode,
                         graph::ReorderStrategy reorder, bool graph_replay) {
  Measurement m;
  m.valid = true;
  double total = 0.0;
  double best = 0.0;
  const std::string run_phase = "run:" + spec.name;
  for (int r = 0; r < runs; ++r) {
    const obs::ScopedPhase phase(run_phase);
    color::Options options;
    options.seed = seed;
    options.frontier_mode = mode;
    options.reorder = reorder;
    options.graph_replay = graph_replay;
    sim::Stopwatch watch;
    color::Coloring result = spec.run(csr, options);
    const double ms = watch.elapsed_ms();
    total += ms;
    if (r == 0 || ms < best) best = ms;
    if (!color::is_valid_coloring(csr, result.colors)) m.valid = false;
    if (r + 1 == runs) m.result = std::move(result);
  }
  m.ms_avg = total / runs;
  m.ms_min = best;
  return m;
}

double geomean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double peak_gbps() {
  static const double peak =
      obs::measure_peak_gbps(sim::Device::instance());
  return peak;
}

TablePrinter::TablePrinter(std::vector<std::string> headers, bool csv)
    : headers_(std::move(headers)), csv_(csv) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  if (csv_) {
    auto print_csv_row = [](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%s", i ? "," : "", row[i].c_str());
      }
      std::printf("\n");
    };
    print_csv_row(headers_);
    for (const auto& row : rows_) print_csv_row(row);
    return;
  }
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      std::printf("%s%-*s", c ? "  " : "", static_cast<int>(widths[c]),
                  row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

JsonReport::JsonReport(std::string bench_name, const Args& args,
                       unsigned streams)
    : path_(args.json_path),
      header_(obs::Json::object()),
      records_(obs::Json::array()) {
  // Disabled reports never serialize, so skip the header — notably the
  // peak-bandwidth calibration run_meta triggers — on table-only runs.
  if (!enabled()) return;
  header_.set("schema", "gcol-bench-v7");
  header_.set("bench", std::move(bench_name));
  header_.set("scale", args.scale);
  header_.set("runs", args.runs);
  header_.set("seed", static_cast<std::int64_t>(args.seed));
  header_.set("meta", run_meta(args.frontier_mode, streams, args.reorder,
                               args.hw_counters, args.graph_replay));
}

void JsonReport::add_measurement(std::string_view dataset,
                                 const Measurement& m) {
  if (!enabled()) return;
  obs::Json record = obs::Json::object();
  record.set("dataset", dataset);
  record.set("algorithm", m.result.algorithm);
  record.set("ms", m.ms_avg);
  record.set("ms_min", m.ms_min);
  record.set("colors", m.result.num_colors);
  record.set("iterations", m.result.iterations);
  record.set("kernel_launches", m.result.kernel_launches);
  record.set("conflicts_resolved", m.result.conflicts_resolved);
  record.set("valid", m.valid);
  record.set("metrics", m.result.metrics.to_json());
  add_record(std::move(record));
}

void JsonReport::add_record(obs::Json record) {
  if (!enabled()) return;
  records_.push_back(std::move(record));
}

bool JsonReport::write() const {
  if (!enabled()) return true;
  obs::Json document = header_;
  document.set("records", records_);
  return obs::write_json_file(path_, document);
}

}  // namespace gcol::bench
