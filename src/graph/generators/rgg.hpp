#pragma once
// Random geometric graphs — the paper's scaling workload (Figure 3). The
// DIMACS10 `rgg_n_2_k_s0` family places n = 2^k points uniformly in the unit
// square and connects pairs within distance r = c * sqrt(ln n / n); this
// generator reproduces that family (same radius rule, same expected average
// degree ~15 at scale 24 with the default multiplier).

#include <cstdint>

#include "graph/coo.hpp"

namespace gcol::graph {

struct RggOptions {
  /// Radius multiplier c in r = c * sqrt(ln n / (pi * n)). With c = 1 the
  /// expected interior degree is ln n, which matches Table I's rgg rows
  /// (e.g. 9.78 at scale 15 vs ln 2^15 = 10.4, 15.8 at scale 24 vs
  /// ln 2^24 = 16.6 — the small deficit is the boundary effect).
  double radius_multiplier = 1.0;
  std::uint64_t seed = 1;
};

/// Generates an RGG with n = 2^scale vertices. O(n + m) expected time via
/// uniform grid bucketing with cell size r. Matches the DIMACS10
/// `rgg_n_2_<scale>_s0` statistics in Table I when radius_multiplier = 1.
[[nodiscard]] Coo generate_rgg(int scale, const RggOptions& options = {});

/// Same, with an explicit vertex count (not necessarily a power of two).
[[nodiscard]] Coo generate_rgg_n(vid_t num_vertices,
                                 const RggOptions& options = {});

}  // namespace gcol::graph
