#include "core/greedy.hpp"

#include <gtest/gtest.h>

#include "../testing/fixtures.hpp"
#include "core/verify.hpp"
#include "graph/generators/erdos_renyi.hpp"
#include "graph/generators/rgg.hpp"

namespace gcol::color {
namespace {

using namespace gcol::testing;

class GreedyOrderTest : public ::testing::TestWithParam<GreedyOrder> {};

TEST_P(GreedyOrderTest, ValidOnAllFixtures) {
  const graph::Csr fixtures[] = {
      empty_graph(0),     empty_graph(7),        path_graph(10),
      cycle_graph(9),     clique_graph(8),       star_graph(12),
      bipartite_graph(4, 6), petersen_graph(),   disconnected_graph(),
  };
  for (const auto& csr : fixtures) {
    GreedyOptions options;
    options.order = GetParam();
    const Coloring result = greedy_color(csr, options);
    EXPECT_TRUE(is_valid_coloring(csr, result.colors));
    EXPECT_LE(result.num_colors, csr.max_degree() + 1);
  }
}

TEST_P(GreedyOrderTest, ExactOnCliques) {
  GreedyOptions options;
  options.order = GetParam();
  for (vid_t n : {1, 2, 5, 10}) {
    const auto csr = clique_graph(n);
    EXPECT_EQ(greedy_color(csr, options).num_colors, n);
  }
}

TEST_P(GreedyOrderTest, DeterministicForSeed) {
  const auto csr =
      graph::build_csr(graph::generate_erdos_renyi(500, 2000, 3));
  GreedyOptions options;
  options.order = GetParam();
  options.seed = 77;
  const Coloring a = greedy_color(csr, options);
  const Coloring b = greedy_color(csr, options);
  EXPECT_EQ(a.colors, b.colors);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, GreedyOrderTest,
    ::testing::Values(GreedyOrder::kNatural, GreedyOrder::kRandom,
                      GreedyOrder::kLargestDegreeFirst,
                      GreedyOrder::kSmallestDegreeLast,
                      GreedyOrder::kIncidenceDegree),
    [](const ::testing::TestParamInfo<GreedyOrder>& param_info) {
      switch (param_info.param) {
        case GreedyOrder::kNatural: return "Natural";
        case GreedyOrder::kRandom: return "Random";
        case GreedyOrder::kLargestDegreeFirst: return "LargestFirst";
        case GreedyOrder::kSmallestDegreeLast: return "SmallestLast";
        case GreedyOrder::kIncidenceDegree: return "Incidence";
      }
      return "Unknown";
    });

TEST(Greedy, BipartiteUsesTwoColors) {
  // First-fit in natural order 2-colors complete bipartite graphs.
  const auto csr = bipartite_graph(5, 7);
  EXPECT_EQ(greedy_color(csr).num_colors, 2);
}

TEST(Greedy, PathUsesTwoColors) {
  EXPECT_EQ(greedy_color(path_graph(50)).num_colors, 2);
}

TEST(Greedy, OddCycleUsesThreeColors) {
  EXPECT_EQ(greedy_color(cycle_graph(9)).num_colors, 3);
}

TEST(Greedy, SingletonGraph) {
  const auto result = greedy_color(empty_graph(1));
  EXPECT_EQ(result.num_colors, 1);
  EXPECT_EQ(result.colors[0], 0);
}

TEST(Greedy, SmallestLastRespectsDegeneracyBound) {
  // An RGG has small degeneracy relative to max degree; SL must not exceed
  // max_degree + 1 and typically beats natural order.
  const auto csr = graph::build_csr(graph::generate_rgg(10, {.seed = 2}));
  GreedyOptions sl;
  sl.order = GreedyOrder::kSmallestDegreeLast;
  const Coloring sl_result = greedy_color(csr, sl);
  const Coloring natural_result = greedy_color(csr);
  EXPECT_TRUE(is_valid_coloring(csr, sl_result.colors));
  EXPECT_LE(sl_result.num_colors, natural_result.num_colors + 1);
}

TEST(Greedy, FirstFitUsesSmallestAvailableColor) {
  // Star center colored after leaves must take color != leaf color; in
  // natural order the center goes first -> color 0, all leaves color 1.
  const auto result = greedy_color(star_graph(6));
  EXPECT_EQ(result.colors[0], 0);
  for (std::size_t leaf = 1; leaf < 6; ++leaf) {
    EXPECT_EQ(result.colors[leaf], 1);
  }
}

TEST(Greedy, ReportsElapsedAndIterations) {
  const auto result = greedy_color(path_graph(100));
  EXPECT_GE(result.elapsed_ms, 0.0);
  EXPECT_EQ(result.iterations, 1);
  EXPECT_EQ(result.algorithm, "cpu_greedy_natural");
}

}  // namespace
}  // namespace gcol::color
