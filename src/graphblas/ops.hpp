#pragma once
// The GraphBLAS operations used by the paper's Algorithms 2–4, plus the
// GxB_scatter extension the paper introduces for Jones-Plassmann (§IV-A3).
//
// Execution model: every operation computes its result into dense
// (values, present) buffers with one or two virtual-GPU kernel launches,
// then merges into the output under mask/replace semantics:
//
//   out_present[i] — the operation produced an entry at i
//   writes(i)      = mask allows i && out_present[i]
//   final(i)       = writes(i) ? out[i] : (replace ? none : old w[i])
//
// which is exactly the GraphBLAS C API's masked-assignment rule. vxm
// implements both the push (iterate sparse input, scatter with atomics) and
// pull (iterate masked outputs, gather) traversals with GraphBLAST's
// direction-optimizing heuristic [Yang et al., ICPP 2018].

#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "graphblas/descriptor.hpp"
#include "graphblas/matrix.hpp"
#include "graphblas/operators.hpp"
#include "graphblas/types.hpp"
#include "graphblas/vector.hpp"
#include "sim/advance.hpp"
#include "sim/atomics.hpp"
#include "sim/compact.hpp"
#include "sim/device.hpp"
#include "sim/reduce.hpp"
#include "sim/scan.hpp"
#include "sim/scratch.hpp"

namespace gcol::grb {

/// Below this many frontier edges-worth of entries, push vxm's one-row-per-
/// entry launch beats paying a degree scan for edge balance (the extra
/// launches dominate exactly where imbalance cannot: tiny frontiers).
inline constexpr std::int64_t kPushEdgeBalanceMinEntries = 4096;

namespace detail {

/// Resolves mask + descriptor into a queryable predicate over positions.
template <typename M>
class MaskView {
 public:
  MaskView(const Vector<M>* mask, const Descriptor& desc)
      : mask_(mask),
        structure_(desc.mask_structure),
        complement_(desc.mask_complement) {}

  /// True when no mask constrains writes at all.
  [[nodiscard]] bool trivial() const noexcept {
    return mask_ == nullptr && !complement_;
  }

  [[nodiscard]] bool allows(Index i) const noexcept {
    if (mask_ == nullptr) {
      // No mask: everything writable; complementing "all" blocks everything.
      return !complement_;
    }
    bool set;
    if (structure_) {
      set = mask_->has(i);
    } else {
      M value{};
      set = mask_->extract_element(&value, i) == Info::kSuccess &&
            value != M{0};
    }
    return complement_ ? !set : set;
  }

 private:
  const Vector<M>* mask_;
  bool structure_;
  bool complement_;
};

/// No-mask tag with the same interface.
struct NoMask {
  [[nodiscard]] static bool trivial() noexcept { return true; }
  [[nodiscard]] static bool allows(Index) noexcept { return true; }
};

/// O(1)-lookup view of a vector: dense vectors are viewed in place; sparse
/// vectors are scattered once into scratch (values + presence) so element
/// probes inside O(n)/O(m) loops never pay a binary search. This mirrors
/// GraphBLAST's densify-before-dense-op strategy.
template <typename T>
class DenseView {
 public:
  DenseView(const Vector<T>& v, sim::Device& device) {
    switch (v.storage()) {
      case Storage::kDense:
        values_ = v.dense_values();
        return;
      case Storage::kBitmap:
        values_ = v.dense_values();
        present_ = v.bitmap_present();
        return;
      case Storage::kSparse: break;
    }
    const auto n = static_cast<std::size_t>(v.size());
    scratch_values_.resize(n);
    scratch_present_.assign(n, 0);
    const auto indices = v.sparse_indices();
    const auto values = v.sparse_values();
    device.launch(
        "grb::densify", static_cast<std::int64_t>(indices.size()),
        [&](std::int64_t k) {
          const auto i =
              static_cast<std::size_t>(indices[static_cast<std::size_t>(k)]);
          scratch_values_[i] = values[static_cast<std::size_t>(k)];
          scratch_present_[i] = 1;
        },
        sim::Schedule::kStatic, 0, nullptr,
        // Per entry: the index and value gathers, then the scattered value
        // store and its present byte.
        sim::Traffic{static_cast<std::int64_t>(sizeof(Index) + sizeof(T)),
                     static_cast<std::int64_t>(sizeof(T)) + 1});
    values_ = scratch_values_;
    present_ = scratch_present_;
  }

  [[nodiscard]] bool has(Index i) const noexcept {
    return present_.empty() || present_[static_cast<std::size_t>(i)] != 0;
  }

  /// Value at i; meaningful only when has(i).
  [[nodiscard]] T operator[](Index i) const noexcept {
    return values_[static_cast<std::size_t>(i)];
  }

 private:
  std::span<const T> values_;
  std::span<const std::uint8_t> present_;
  std::vector<T> scratch_values_;
  std::vector<std::uint8_t> scratch_present_;
};

/// Applies f(index, value) to every stored entry of `u`, in parallel.
/// Sparse storage iterates its entry list; dense/bitmap iterate positions.
/// `name` labels the kernel launch for the observability layer.
template <typename T, typename F>
void for_each_entry(sim::Device& device, const Vector<T>& u, F f,
                    const char* name = "grb::for_each_entry") {
  switch (u.storage()) {
    case Storage::kDense: {
      const auto values = u.dense_values();
      device.launch(name, u.size(), [&](std::int64_t i) {
        f(i, values[static_cast<std::size_t>(i)]);
      });
      return;
    }
    case Storage::kBitmap: {
      const auto values = u.dense_values();
      const auto present = u.bitmap_present();
      device.launch(name, u.size(), [&](std::int64_t i) {
        if (present[static_cast<std::size_t>(i)] != 0) {
          f(i, values[static_cast<std::size_t>(i)]);
        }
      });
      return;
    }
    case Storage::kSparse: {
      const auto indices = u.sparse_indices();
      const auto values = u.sparse_values();
      device.launch(
          name, static_cast<std::int64_t>(indices.size()),
          [&](std::int64_t k) {
            f(indices[static_cast<std::size_t>(k)],
              values[static_cast<std::size_t>(k)]);
          });
      return;
    }
  }
}

/// Mask wrapper over a DenseView (value or structure semantics, with
/// complement) so masked inner loops also avoid binary searches.
template <typename M>
class FastMaskView {
 public:
  FastMaskView(const Vector<M>* mask, const Descriptor& desc,
               sim::Device& device)
      : structure_(desc.mask_structure), complement_(desc.mask_complement) {
    if (mask != nullptr) view_.emplace(*mask, device);
  }

  [[nodiscard]] bool trivial() const noexcept {
    return !view_.has_value() && !complement_;
  }

  [[nodiscard]] bool allows(Index i) const noexcept {
    if (!view_.has_value()) return !complement_;
    const bool set =
        view_->has(i) && (structure_ || (*view_)[i] != M{0});
    return complement_ ? !set : set;
  }

 private:
  std::optional<DenseView<M>> view_;
  bool structure_;
  bool complement_;
};

/// Merges dense (values, present) results into `w` under mask/replace rules.
/// `all_present` short-circuits the common dense case.
template <typename W, typename Mask>
void write_back(sim::Device& device, Vector<W>& w, const Mask& mask,
                std::vector<W>&& out_values,
                const std::vector<std::uint8_t>& out_present,
                bool all_present, bool replace) {
  const Index n = w.size();
  const auto un = static_cast<std::size_t>(n);
  if (all_present && mask.trivial()) {
    w.adopt_dense(std::move(out_values));
    return;
  }

  // final value/presence per position; probe old entries through a dense
  // view so sparse outputs don't pay a binary search per position.
  const DenseView<W> old_view(w, device);
  std::vector<std::uint8_t> final_present(un, 0);
  device.launch(
      "grb::write_back", n,
      [&](std::int64_t i) {
        const auto ui = static_cast<std::size_t>(i);
        const bool produced = all_present || out_present[ui] != 0;
        if (mask.allows(i) && produced) {
          final_present[ui] = 1;
          return;
        }
        if (!replace && old_view.has(i)) {
          final_present[ui] = 1;
          out_values[ui] = old_view[i];
        }
      },
      sim::Schedule::kStatic, 0, nullptr,
      // Per position: the produced and old-presence probes plus the final
      // presence byte; mask probes and the keep-old value copy are
      // data-dependent and excluded (structural floor).
      sim::Traffic{2, 1});

  const std::int64_t kept = sim::count_if<std::uint8_t>(
      device, final_present, [](std::uint8_t p) { return p != 0; });
  if (kept == n) {
    w.adopt_dense(std::move(out_values));
    return;
  }
  // Bitmap install: no compaction — the next operation reads presence in
  // O(1) through a DenseView.
  w.adopt_bitmap(std::move(out_values), std::move(final_present), kept);
}

}  // namespace detail

// ---- GrB_assign (scalar to all positions) --------------------------------

/// w<mask> = value over GrB_ALL. With no mask the vector becomes dense.
/// Mirrors the paper's `GrB_assign(C, frontier, GrB_NULL, color, GrB_ALL,
/// nrows(A), desc)`.
template <typename W, typename M, typename T>
Info assign(Vector<W>& w, const Vector<M>* mask, T value,
            const Descriptor& desc = kDefaultDesc) {
  auto& device = sim::Device::instance();
  const detail::MaskView<M> view(mask, desc);
  if (mask != nullptr && mask->size() != w.size()) {
    return Info::kDimensionMismatch;
  }
  if (view.trivial()) {
    w.fill(static_cast<W>(value));
    return Info::kSuccess;
  }
  std::vector<W> out(static_cast<std::size_t>(w.size()),
                     static_cast<W>(value));
  // assign produces an entry at every (masked) position.
  detail::write_back(device, w, view, std::move(out), {}, /*all_present=*/true,
                     desc.replace);
  return Info::kSuccess;
}

/// Unmasked overload (mask type cannot be deduced from nullptr).
template <typename W, typename T>
Info assign(Vector<W>& w, std::nullptr_t, T value,
            const Descriptor& desc = kDefaultDesc) {
  return assign(w, static_cast<const Vector<W>*>(nullptr), value, desc);
}

// ---- GrB_apply -----------------------------------------------------------

/// Extension: f receives (index, value) — needed by the paper's
/// `set_random()`, which must derive a per-vertex random weight
/// reproducibly (counter RNG keyed by vertex id).
template <typename W, typename M, typename U, typename F>
Info apply_indexed(Vector<W>& w, const Vector<M>* mask, F f,
                   const Vector<U>& u, const Descriptor& desc = kDefaultDesc) {
  if (u.size() != w.size()) return Info::kDimensionMismatch;
  if (mask != nullptr && mask->size() != w.size()) {
    return Info::kDimensionMismatch;
  }
  auto& device = sim::Device::instance();
  const detail::MaskView<M> view(mask, desc);
  const Index n = w.size();
  const auto un = static_cast<std::size_t>(n);
  std::vector<W> out(un);
  if (u.is_dense()) {
    const auto uv = u.dense_values();
    device.launch(
        "grb::apply", n,
        [&](std::int64_t i) {
          out[static_cast<std::size_t>(i)] =
              static_cast<W>(f(i, uv[static_cast<std::size_t>(i)]));
        },
        sim::Schedule::kStatic, 0, nullptr,
        // Per position: one input gather and the output store.
        sim::Traffic{static_cast<std::int64_t>(sizeof(U)),
                     static_cast<std::int64_t>(sizeof(W))});
    detail::write_back(device, w, view, std::move(out), {},
                       /*all_present=*/true, desc.replace);
    return Info::kSuccess;
  }
  std::vector<std::uint8_t> present(un, 0);
  detail::for_each_entry(
      device, u,
      [&](Index i, U value) {
        out[static_cast<std::size_t>(i)] = static_cast<W>(f(i, value));
        present[static_cast<std::size_t>(i)] = 1;
      },
      "grb::apply");
  detail::write_back(device, w, view, std::move(out), present,
                     /*all_present=*/false, desc.replace);
  return Info::kSuccess;
}

/// w<mask> = f(u), entry-wise over u's stored entries.
template <typename W, typename M, typename U, typename F>
Info apply(Vector<W>& w, const Vector<M>* mask, F f, const Vector<U>& u,
           const Descriptor& desc = kDefaultDesc) {
  return apply_indexed(
      w, mask, [&f](Index, U value) { return f(value); }, u, desc);
}

/// Unmasked overloads (mask type cannot be deduced from a bare nullptr).
template <typename W, typename U, typename F>
Info apply_indexed(Vector<W>& w, std::nullptr_t, F f, const Vector<U>& u,
                   const Descriptor& desc = kDefaultDesc) {
  return apply_indexed(w, static_cast<const Vector<W>*>(nullptr), f, u, desc);
}

template <typename W, typename U, typename F>
Info apply(Vector<W>& w, std::nullptr_t, F f, const Vector<U>& u,
           const Descriptor& desc = kDefaultDesc) {
  return apply(w, static_cast<const Vector<W>*>(nullptr), f, u, desc);
}

// ---- GrB_eWiseAdd / GrB_eWiseMult -----------------------------------------

/// w<mask> = u op v with UNION structure: entry where u or v has one;
/// op applied only where both do.
template <typename W, typename M, typename U, typename V, typename Op>
Info eWiseAdd(Vector<W>& w, const Vector<M>* mask, Op op, const Vector<U>& u,
              const Vector<V>& v, const Descriptor& desc = kDefaultDesc) {
  if (u.size() != w.size() || v.size() != w.size()) {
    return Info::kDimensionMismatch;
  }
  if (mask != nullptr && mask->size() != w.size()) {
    return Info::kDimensionMismatch;
  }
  auto& device = sim::Device::instance();
  const detail::MaskView<M> view(mask, desc);
  const Index n = w.size();
  const auto un = static_cast<std::size_t>(n);
  std::vector<W> out(un);
  const bool both_dense = u.is_dense() && v.is_dense();
  if (both_dense) {
    const auto uv = u.dense_values();
    const auto vv = v.dense_values();
    device.launch(
        "grb::eWiseAdd", n,
        [&](std::int64_t i) {
          const auto ui = static_cast<std::size_t>(i);
          out[ui] = static_cast<W>(
              op(static_cast<W>(uv[ui]), static_cast<W>(vv[ui])));
        },
        sim::Schedule::kStatic, 0, nullptr,
        // Per position: both input gathers and the output store.
        sim::Traffic{static_cast<std::int64_t>(sizeof(U) + sizeof(V)),
                     static_cast<std::int64_t>(sizeof(W))});
    detail::write_back(device, w, view, std::move(out), {},
                       /*all_present=*/true, desc.replace);
    return Info::kSuccess;
  }
  std::vector<std::uint8_t> present(un, 0);
  const detail::DenseView<U> uview(u, device);
  const detail::DenseView<V> vview(v, device);
  device.launch(
      "grb::eWiseAdd", n,
      [&](std::int64_t i) {
        const auto ui = static_cast<std::size_t>(i);
        const bool has_u = uview.has(i);
        const bool has_v = vview.has(i);
        if (has_u && has_v) {
          out[ui] = static_cast<W>(
              op(static_cast<W>(uview[i]), static_cast<W>(vview[i])));
          present[ui] = 1;
        } else if (has_u) {
          out[ui] = static_cast<W>(uview[i]);
          present[ui] = 1;
        } else if (has_v) {
          out[ui] = static_cast<W>(vview[i]);
          present[ui] = 1;
        }
      },
      sim::Schedule::kStatic, 0, nullptr,
      // Per position, modeling the both-present path: two presence probes,
      // both value gathers, the output store and its present byte.
      sim::Traffic{2 + static_cast<std::int64_t>(sizeof(U) + sizeof(V)),
                   static_cast<std::int64_t>(sizeof(W)) + 1});
  detail::write_back(device, w, view, std::move(out), present,
                     /*all_present=*/false, desc.replace);
  return Info::kSuccess;
}

/// Unmasked eWiseAdd.
template <typename W, typename U, typename V, typename Op>
Info eWiseAdd(Vector<W>& w, std::nullptr_t, Op op, const Vector<U>& u,
              const Vector<V>& v, const Descriptor& desc = kDefaultDesc) {
  return eWiseAdd(w, static_cast<const Vector<W>*>(nullptr), op, u, v, desc);
}

/// w<mask> = u op v with INTERSECTION structure: entry only where both have.
template <typename W, typename M, typename U, typename V, typename Op>
Info eWiseMult(Vector<W>& w, const Vector<M>* mask, Op op, const Vector<U>& u,
               const Vector<V>& v, const Descriptor& desc = kDefaultDesc) {
  if (u.size() != w.size() || v.size() != w.size()) {
    return Info::kDimensionMismatch;
  }
  if (mask != nullptr && mask->size() != w.size()) {
    return Info::kDimensionMismatch;
  }
  auto& device = sim::Device::instance();
  const detail::MaskView<M> view(mask, desc);
  const Index n = w.size();
  const auto un = static_cast<std::size_t>(n);
  std::vector<W> out(un);
  if (u.is_dense() && v.is_dense()) {
    const auto uv = u.dense_values();
    const auto vv = v.dense_values();
    device.launch(
        "grb::eWiseMult", n,
        [&](std::int64_t i) {
          const auto ui = static_cast<std::size_t>(i);
          out[ui] = static_cast<W>(
              op(static_cast<W>(uv[ui]), static_cast<W>(vv[ui])));
        },
        sim::Schedule::kStatic, 0, nullptr,
        // Per position: both input gathers and the output store.
        sim::Traffic{static_cast<std::int64_t>(sizeof(U) + sizeof(V)),
                     static_cast<std::int64_t>(sizeof(W))});
    detail::write_back(device, w, view, std::move(out), {},
                       /*all_present=*/true, desc.replace);
    return Info::kSuccess;
  }
  std::vector<std::uint8_t> present(un, 0);
  const detail::DenseView<U> uview(u, device);
  const detail::DenseView<V> vview(v, device);
  device.launch(
      "grb::eWiseMult", n,
      [&](std::int64_t i) {
        const auto ui = static_cast<std::size_t>(i);
        if (uview.has(i) && vview.has(i)) {
          out[ui] = static_cast<W>(
              op(static_cast<W>(uview[i]), static_cast<W>(vview[i])));
          present[ui] = 1;
        }
      },
      sim::Schedule::kStatic, 0, nullptr,
      // Per position, modeling the both-present path: two presence probes,
      // both value gathers, the output store and its present byte.
      sim::Traffic{2 + static_cast<std::int64_t>(sizeof(U) + sizeof(V)),
                   static_cast<std::int64_t>(sizeof(W)) + 1});
  detail::write_back(device, w, view, std::move(out), present,
                     /*all_present=*/false, desc.replace);
  return Info::kSuccess;
}

/// Unmasked eWiseMult.
template <typename W, typename U, typename V, typename Op>
Info eWiseMult(Vector<W>& w, std::nullptr_t, Op op, const Vector<U>& u,
               const Vector<V>& v, const Descriptor& desc = kDefaultDesc) {
  return eWiseMult(w, static_cast<const Vector<W>*>(nullptr), op, u, v, desc);
}

// ---- GrB_vxm ----------------------------------------------------------------

/// w<mask> = u ⊕.⊗ A over the given semiring. The Matrix wraps an undirected
/// graph's CSR (A = Aᵀ), so row j doubles as column j.
///
/// Pull: one launch over output positions the mask allows — this is where
/// masking "avoids many memory accesses" (paper §III-A1). Push: one launch
/// over u's stored entries, scattering with CAS-loop atomics (integral W
/// only; other types always pull).
template <typename W, typename M, typename U, typename A, typename AddMonoid,
          typename MulOp>
Info vxm(Vector<W>& w, const Vector<M>* mask,
         Semiring<AddMonoid, MulOp> semiring, const Vector<U>& u,
         const Matrix<A>& a, const Descriptor& desc = kDefaultDesc) {
  if (u.size() != a.nrows() || w.size() != a.ncols()) {
    return Info::kDimensionMismatch;
  }
  if (mask != nullptr && mask->size() != w.size()) {
    return Info::kDimensionMismatch;
  }
  auto& device = sim::Device::instance();
  const detail::FastMaskView<M> view(mask, desc, device);
  const Index n = w.size();
  const auto un = static_cast<std::size_t>(n);
  const graph::Csr& csr = a.csr();

  bool push;
  switch (desc.vxm_mode) {
    case VxmMode::kPush: push = true; break;
    case VxmMode::kPull: push = false; break;
    case VxmMode::kAuto:
    default: {
      // Direction-optimizing heuristic: push while the frontier's edge work
      // is smaller than a full pull pass over the masked outputs.
      const double avg_degree = csr.average_degree();
      push = !u.is_dense() &&
             static_cast<double>(u.nvals()) * avg_degree <
                 static_cast<double>(n);
      break;
    }
  }
  if constexpr (!(std::is_integral_v<W> &&
                  (sizeof(W) == 4 || sizeof(W) == 8))) {
    push = false;  // atomic CAS-combine requires a lock-free integral type
  }

  const W identity = static_cast<W>(semiring.add.identity);
  std::vector<W> out(un, identity);
  std::vector<std::uint8_t> present(un, 0);

  if (push) {
    // Per-edge combine shared by both push schedules: CAS under the add
    // monoid (integral W only — non-integral W was forced to pull above).
    const auto combine_edge = [&](Index j, U ui_value, eid_t e) {
      if (!view.allows(j)) return;
      const W product = static_cast<W>(semiring.mul(
          static_cast<W>(ui_value), static_cast<W>(a.value_at(e))));
      if constexpr (std::is_integral_v<W>) {
        std::atomic_ref<W> slot(out[static_cast<std::size_t>(j)]);
        W observed = slot.load(std::memory_order_relaxed);
        W desired = static_cast<W>(semiring.add(observed, product));
        while (desired != observed &&
               !slot.compare_exchange_weak(observed, desired,
                                           std::memory_order_relaxed)) {
          desired = static_cast<W>(semiring.add(observed, product));
        }
        sim::atomic_store(present[static_cast<std::size_t>(j)],
                          std::uint8_t{1});
      } else {
        (void)product;
      }
    };

    // Edge-balanced push (merge-path over a frontier degree scan): a hub
    // row's scatter splits across workers instead of serializing on the one
    // that drew the entry — the Gunrock-advance treatment applied to the
    // GraphBLAST push traversal. Only once the frontier is large enough to
    // amortize the scan's extra launches; small frontiers keep the
    // single-launch row walk.
    const bool balanced =
        desc.push_edge_balanced && u.is_sparse() &&
        static_cast<std::int64_t>(u.nvals()) >= kPushEdgeBalanceMinEntries;
    if (balanced) {
      const auto indices = u.sparse_indices();
      const auto uvals = u.sparse_values();
      const auto nvals = static_cast<std::int64_t>(indices.size());
      const std::span<eid_t> offsets = device.scratch().get<eid_t>(
          sim::ScratchLane::kDegrees, static_cast<std::size_t>(nvals) + 1);
      device.launch(
          "grb::vxm_degrees", nvals,
          [&](std::int64_t k) {
            const auto row = static_cast<std::size_t>(
                indices[static_cast<std::size_t>(k)]);
            offsets[static_cast<std::size_t>(k)] =
                csr.row_offsets[row + 1] - csr.row_offsets[row];
          },
          sim::Schedule::kStatic, 0, nullptr,
          // Per frontier entry: the index gather, the row-offset pair, and
          // the degree store.
          sim::Traffic{
              static_cast<std::int64_t>(sizeof(Index) + 2 * sizeof(eid_t)),
              static_cast<std::int64_t>(sizeof(eid_t))});
      const eid_t total = sim::exclusive_scan<eid_t>(
          device, offsets.first(static_cast<std::size_t>(nvals)),
          offsets.first(static_cast<std::size_t>(nvals)));
      offsets[static_cast<std::size_t>(nvals)] = total;
      sim::for_each_segment_range<eid_t>(
          device, "grb::vxm_push", offsets,
          [&](std::int64_t s, std::int64_t local_begin,
              std::int64_t local_end, std::int64_t /*global_begin*/) {
            const auto su = static_cast<std::size_t>(s);
            const auto row = static_cast<std::size_t>(indices[su]);
            const U ui_value = uvals[su];
            const eid_t row_begin = csr.row_offsets[row];
            for (std::int64_t k = local_begin; k < local_end; ++k) {
              const auto e = static_cast<eid_t>(
                  row_begin + static_cast<eid_t>(k));
              combine_edge(static_cast<Index>(
                               csr.col_indices[static_cast<std::size_t>(e)]),
                           ui_value, e);
            }
          },
          nullptr,
          // Per edge: one column gather plus the CAS read-modify-write of
          // the accumulator and the present-byte store. Mask early-outs and
          // CAS retries are data-dependent and excluded (structural floor).
          sim::Traffic{static_cast<std::int64_t>(sizeof(vid_t) + sizeof(W)),
                       static_cast<std::int64_t>(sizeof(W)) + 1});
    } else {
      detail::for_each_entry(
          device, u,
          [&](Index i, U ui_value) {
            const auto row = static_cast<vid_t>(i);
            const eid_t begin = csr.row_offsets[static_cast<std::size_t>(row)];
            const eid_t end =
                csr.row_offsets[static_cast<std::size_t>(row) + 1];
            for (eid_t e = begin; e < end; ++e) {
              combine_edge(static_cast<Index>(
                               csr.col_indices[static_cast<std::size_t>(e)]),
                           ui_value, e);
            }
          },
          "grb::vxm_push");
    }
  } else {
    const detail::DenseView<U> uview(u, device);
    device.launch(
        "grb::vxm_pull", n,
        [&](std::int64_t j) {
          if (!view.allows(j)) return;
          const auto row = static_cast<vid_t>(j);
          const eid_t begin = csr.row_offsets[static_cast<std::size_t>(row)];
          const eid_t end = csr.row_offsets[static_cast<std::size_t>(row) + 1];
          W acc = identity;
          bool hit = false;
          for (eid_t e = begin; e < end; ++e) {
            const auto i = static_cast<Index>(
                csr.col_indices[static_cast<std::size_t>(e)]);
            if (!uview.has(i)) continue;
            acc = static_cast<W>(semiring.add(
                acc, static_cast<W>(semiring.mul(
                         static_cast<W>(uview[i]),
                         static_cast<W>(a.value_at(e))))));
            hit = true;
          }
          if (hit) {
            out[static_cast<std::size_t>(j)] = acc;
            present[static_cast<std::size_t>(j)] = 1;
          }
        },
        sim::Schedule::kDynamic);
  }

  detail::write_back(device, w, view, std::move(out), present,
                     /*all_present=*/false, desc.replace);
  return Info::kSuccess;
}

/// Unmasked vxm.
template <typename W, typename U, typename A, typename AddMonoid,
          typename MulOp>
Info vxm(Vector<W>& w, std::nullptr_t, Semiring<AddMonoid, MulOp> semiring,
         const Vector<U>& u, const Matrix<A>& a,
         const Descriptor& desc = kDefaultDesc) {
  return vxm(w, static_cast<const Vector<W>*>(nullptr), semiring, u, a, desc);
}

/// GrB_mxv: w<mask> = A (+.x) u. The library's matrices wrap undirected
/// graphs (A = A^T), so this is vxm with the operands' roles renamed; both
/// spellings are provided because the two APIs read differently at call
/// sites transcribed from papers.
template <typename W, typename M, typename U, typename A, typename AddMonoid,
          typename MulOp>
Info mxv(Vector<W>& w, const Vector<M>* mask,
         Semiring<AddMonoid, MulOp> semiring, const Matrix<A>& a,
         const Vector<U>& u, const Descriptor& desc = kDefaultDesc) {
  return vxm(w, mask, semiring, u, a, desc);
}

template <typename W, typename U, typename A, typename AddMonoid,
          typename MulOp>
Info mxv(Vector<W>& w, std::nullptr_t, Semiring<AddMonoid, MulOp> semiring,
         const Matrix<A>& a, const Vector<U>& u,
         const Descriptor& desc = kDefaultDesc) {
  return vxm(w, static_cast<const Vector<W>*>(nullptr), semiring, u, a, desc);
}

// ---- GrB_reduce ---------------------------------------------------------------

/// *out = monoid-reduction over u's stored entries. Missing positions
/// contribute the monoid identity, so a single dense pass serves every
/// storage kind.
template <typename T, typename U, typename Op>
Info reduce(T* out, Monoid<Op, T> monoid, const Vector<U>& u,
            const Descriptor& = kDefaultDesc) {
  if (out == nullptr) return Info::kInvalidValue;
  auto& device = sim::Device::instance();
  if (u.is_sparse()) {
    const auto values = u.sparse_values();
    std::vector<T> cast(values.size());
    device.launch(
        "grb::reduce_cast", static_cast<std::int64_t>(values.size()),
        [&](std::int64_t i) {
          cast[static_cast<std::size_t>(i)] =
              static_cast<T>(values[static_cast<std::size_t>(i)]);
        },
        sim::Schedule::kStatic, 0, nullptr,
        // Per entry: one value gather and the widened store.
        sim::Traffic{static_cast<std::int64_t>(sizeof(U)),
                     static_cast<std::int64_t>(sizeof(T))});
    *out = sim::reduce<T>(device, cast, monoid.identity,
                          [&](T x, T y) { return monoid(x, y); });
    return Info::kSuccess;
  }
  const detail::DenseView<U> view(u, device);
  std::vector<T> cast(static_cast<std::size_t>(u.size()));
  device.launch(
      "grb::reduce_cast", u.size(),
      [&](std::int64_t i) {
        cast[static_cast<std::size_t>(i)] =
            view.has(i) ? static_cast<T>(view[i]) : monoid.identity;
      },
      sim::Schedule::kStatic, 0, nullptr,
      // Per position: the presence probe, the value gather, and the widened
      // store.
      sim::Traffic{1 + static_cast<std::int64_t>(sizeof(U)),
                   static_cast<std::int64_t>(sizeof(T))});
  *out = sim::reduce<T>(device, cast, monoid.identity,
                        [&](T x, T y) { return monoid(x, y); });
  return Info::kSuccess;
}

// ---- GxB_scatter (paper extension, §IV-A3) ----------------------------------

/// For every stored entry (i, c) of u with mask allowing position i:
///   w[static_cast<Index>(c)] = value, when 0 <= c < w.size().
/// Out-of-range targets are skipped (the paper clamps neighbor colors into
/// the possible-colors array the same way). w must be dense — the paper
/// fills `colors` with GrB_assign first. Duplicate targets are benign (all
/// writers store the same value) but must still be relaxed atomic stores,
/// as on the GPU, or concurrent workers race on the shared slot.
template <typename W, typename M, typename U, typename T>
Info scatter(Vector<W>& w, const Vector<M>* mask, const Vector<U>& u, T value,
             const Descriptor& desc = kDefaultDesc) {
  if (!w.is_dense()) return Info::kInvalidValue;
  if (mask != nullptr && mask->size() != u.size()) {
    return Info::kDimensionMismatch;
  }
  auto& device = sim::Device::instance();
  const detail::MaskView<M> view(mask, desc);
  auto wv = w.dense_values();
  const Index bound = w.size();
  detail::for_each_entry(
      device, u,
      [&](Index i, U c) {
        if (!view.allows(i)) return;
        const auto target = static_cast<Index>(c);
        if (target < 0 || target >= bound) return;
        sim::atomic_store(wv[static_cast<std::size_t>(target)],
                          static_cast<W>(value));
      },
      "grb::scatter");
  return Info::kSuccess;
}

/// Unmasked scatter overload.
template <typename W, typename U, typename T>
Info scatter(Vector<W>& w, std::nullptr_t, const Vector<U>& u, T value,
             const Descriptor& desc = kDefaultDesc) {
  return scatter(w, static_cast<const Vector<W>*>(nullptr), u, value, desc);
}

}  // namespace gcol::grb
