file(REMOVE_RECURSE
  "CMakeFiles/ilu_level_scheduling.dir/ilu_level_scheduling.cpp.o"
  "CMakeFiles/ilu_level_scheduling.dir/ilu_level_scheduling.cpp.o.d"
  "ilu_level_scheduling"
  "ilu_level_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilu_level_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
