#include "graph/reorder.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "sim/device.hpp"
#include "sim/histogram.hpp"
#include "sim/scan.hpp"
#include "sim/simd.hpp"

namespace gcol::graph {

namespace {

/// Inverts `old_of_new` into `new_of_old` (one scatter launch).
void invert_order(sim::Device& device, std::span<const vid_t> old_of_new,
                  std::span<vid_t> new_of_old) {
  device.launch("reorder::invert_permutation",
                static_cast<std::int64_t>(old_of_new.size()),
                [&](std::int64_t u) {
                  new_of_old[static_cast<std::size_t>(
                      old_of_new[static_cast<std::size_t>(u)])] =
                      static_cast<vid_t>(u);
                });
}

/// Stable hub-first sort: bin = max_degree - degree, so ascending-bin
/// counting sort yields descending degree with input order preserved among
/// equal degrees.
void degree_sort_order(sim::Device& device, const Csr& csr,
                       std::span<vid_t> old_of_new) {
  const std::int64_t bins = static_cast<std::int64_t>(csr.max_degree()) + 1;
  sim::stable_sort_by_bin(
      device, static_cast<std::int64_t>(csr.num_vertices), bins,
      [&](std::int64_t v) {
        return bins - 1 -
               static_cast<std::int64_t>(csr.degree(static_cast<vid_t>(v)));
      },
      old_of_new);
}

/// Degree-binned grouping: log2-degree buckets, hubs-first, tails keep their
/// input order (so whatever neighbor affinity the input numbering had inside
/// a bucket survives). 34 bins cover every possible 32-bit degree.
void dbg_order(sim::Device& device, const Csr& csr,
               std::span<vid_t> old_of_new) {
  constexpr std::int64_t kBuckets = 34;  // bit_width(degree) in [0, 32]
  sim::stable_sort_by_bin(
      device, static_cast<std::int64_t>(csr.num_vertices), kBuckets,
      [&](std::int64_t v) {
        const auto degree =
            static_cast<std::uint32_t>(csr.degree(static_cast<vid_t>(v)));
        return kBuckets - 1 - static_cast<std::int64_t>(std::bit_width(degree));
      },
      old_of_new);
}

/// Cuthill-McKee visit order over every component, written into
/// `old_of_new`. Inherently sequential (each dequeue depends on the order so
/// far), so it runs as one accounted host pass; the component seeds are
/// pseudo-peripheral vertices found by repeated BFS (the standard
/// George-Liu refinement, capped at three sweeps).
void bfs_cm_order(sim::Device& device, const Csr& csr,
                  std::span<vid_t> old_of_new) {
  const vid_t n = csr.num_vertices;
  device.host_pass("reorder::bfs_cm", [&] {
    std::vector<std::int32_t> stamp(static_cast<std::size_t>(n), 0);
    std::int32_t epoch = 0;

    // BFS from `seed` over vertices not yet emitted (stamp != kEmitted),
    // returning the depth and a minimum-degree vertex of the last level.
    constexpr std::int32_t kEmitted = -1;
    std::vector<vid_t> frontier, next;
    const auto bfs_extent = [&](vid_t seed) {
      ++epoch;
      frontier.assign(1, seed);
      stamp[static_cast<std::size_t>(seed)] = epoch;
      vid_t depth = 0;
      vid_t far_vertex = seed;
      while (true) {
        next.clear();
        for (const vid_t v : frontier) {
          for (const vid_t w : csr.neighbors(v)) {
            std::int32_t& mark = stamp[static_cast<std::size_t>(w)];
            if (mark == epoch || mark == kEmitted) continue;
            mark = epoch;
            next.push_back(w);
          }
        }
        if (next.empty()) break;
        ++depth;
        far_vertex = next[0];
        for (const vid_t v : next) {
          if (csr.degree(v) < csr.degree(far_vertex) ||
              (csr.degree(v) == csr.degree(far_vertex) && v < far_vertex)) {
            far_vertex = v;
          }
        }
        frontier.swap(next);
      }
      return std::pair<vid_t, vid_t>{depth, far_vertex};
    };

    std::size_t emitted = 0;
    std::vector<vid_t> scratch_neighbors;
    for (vid_t v0 = 0; v0 < n; ++v0) {
      if (stamp[static_cast<std::size_t>(v0)] == kEmitted) continue;
      // Pseudo-peripheral seed: hop to a min-degree vertex of the farthest
      // BFS level until the eccentricity stops growing (max three sweeps).
      vid_t seed = v0;
      vid_t prev_depth = -1;
      for (int sweep = 0; sweep < 3; ++sweep) {
        const auto [depth, far_vertex] = bfs_extent(seed);
        if (depth <= prev_depth || far_vertex == seed) break;
        prev_depth = depth;
        seed = far_vertex;
      }

      // Cuthill-McKee: emit the seed, then each dequeued vertex's unvisited
      // neighbors in ascending (degree, id) order. old_of_new doubles as
      // the work queue — everything emitted is already in visit order.
      const std::size_t component_head = emitted;
      old_of_new[emitted++] = seed;
      stamp[static_cast<std::size_t>(seed)] = kEmitted;
      for (std::size_t head = component_head; head < emitted; ++head) {
        const vid_t v = old_of_new[head];
        scratch_neighbors.clear();
        for (const vid_t w : csr.neighbors(v)) {
          if (stamp[static_cast<std::size_t>(w)] != kEmitted) {
            stamp[static_cast<std::size_t>(w)] = kEmitted;
            scratch_neighbors.push_back(w);
          }
        }
        std::sort(scratch_neighbors.begin(), scratch_neighbors.end(),
                  [&](vid_t a, vid_t b) {
                    return csr.degree(a) != csr.degree(b)
                               ? csr.degree(a) < csr.degree(b)
                               : a < b;
                  });
        for (const vid_t w : scratch_neighbors) old_of_new[emitted++] = w;
      }
    }
  });
}

}  // namespace

const char* to_string(ReorderStrategy strategy) noexcept {
  switch (strategy) {
    case ReorderStrategy::kIdentity:
      return "identity";
    case ReorderStrategy::kDegreeSort:
      return "degree_sort";
    case ReorderStrategy::kDbg:
      return "dbg";
    case ReorderStrategy::kBfs:
      return "bfs";
  }
  return "identity";
}

bool parse_reorder(std::string_view text, ReorderStrategy& out) {
  for (const ReorderStrategy strategy : all_reorder_strategies()) {
    if (text == to_string(strategy)) {
      out = strategy;
      return true;
    }
  }
  return false;
}

const std::vector<ReorderStrategy>& all_reorder_strategies() {
  static const std::vector<ReorderStrategy> all = {
      ReorderStrategy::kIdentity, ReorderStrategy::kDegreeSort,
      ReorderStrategy::kDbg, ReorderStrategy::kBfs};
  return all;
}

bool Permutation::check() const {
  const std::size_t n = new_of_old.size();
  if (old_of_new.size() != n) return false;
  for (std::size_t v = 0; v < n; ++v) {
    const vid_t forward = new_of_old[v];
    if (forward < 0 || static_cast<std::size_t>(forward) >= n) return false;
    if (static_cast<std::size_t>(
            old_of_new[static_cast<std::size_t>(forward)]) != v) {
      return false;
    }
  }
  // Mutual inversion over all n entries implies both maps are bijections.
  return true;
}

Permutation identity_permutation(vid_t n) {
  Permutation perm;
  perm.new_of_old.resize(static_cast<std::size_t>(n));
  perm.old_of_new.resize(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    perm.new_of_old[static_cast<std::size_t>(v)] = v;
    perm.old_of_new[static_cast<std::size_t>(v)] = v;
  }
  return perm;
}

Permutation make_permutation(const Csr& csr, ReorderStrategy strategy) {
  const vid_t n = csr.num_vertices;
  if (strategy == ReorderStrategy::kIdentity) return identity_permutation(n);

  sim::Device& device = sim::Device::instance();
  Permutation perm;
  perm.new_of_old.resize(static_cast<std::size_t>(n));
  perm.old_of_new.resize(static_cast<std::size_t>(n));
  switch (strategy) {
    case ReorderStrategy::kDegreeSort:
      degree_sort_order(device, csr, perm.old_of_new);
      break;
    case ReorderStrategy::kDbg:
      dbg_order(device, csr, perm.old_of_new);
      break;
    case ReorderStrategy::kBfs:
      bfs_cm_order(device, csr, perm.old_of_new);
      break;
    case ReorderStrategy::kIdentity:
      break;  // handled above
  }
  invert_order(device, perm.old_of_new, perm.new_of_old);
  return perm;
}

Csr relabel(const Csr& csr, const Permutation& perm) {
  const vid_t n = csr.num_vertices;
  if (perm.size() != n) {
    throw std::invalid_argument("relabel: permutation size != num_vertices");
  }
  sim::Device& device = sim::Device::instance();
  const std::span<const vid_t> old_of_new = perm.old_of_new;
  const std::span<const vid_t> new_of_old = perm.new_of_old;

  Csr out;
  out.num_vertices = n;
  out.row_offsets.resize(static_cast<std::size_t>(n) + 1);
  out.col_indices.resize(static_cast<std::size_t>(csr.num_edges()));

  // Degrees are permutation-invariant per vertex: gather each new row's
  // length from its old row, scan into offsets.
  device.launch("reorder::gather_degrees", n, [&](std::int64_t u) {
    out.row_offsets[static_cast<std::size_t>(u)] = static_cast<eid_t>(
        csr.degree(old_of_new[static_cast<std::size_t>(u)]));
  });
  const std::span<eid_t> offsets(out.row_offsets.data(),
                                 static_cast<std::size_t>(n));
  const eid_t total = sim::exclusive_scan<eid_t>(device, offsets, offsets);
  out.row_offsets[static_cast<std::size_t>(n)] = total;

  // Translate each old adjacency list into new ids and re-sort it — the
  // gather-scatter kernel whose locality the reordering exists to improve.
  // Dynamic schedule: hub rows are orders of magnitude longer than tails.
  device.launch(
      "reorder::gather_adjacency", n,
      [&](std::int64_t u) {
        const vid_t old_v = old_of_new[static_cast<std::size_t>(u)];
        const std::span<const vid_t> nbrs = csr.neighbors(old_v);
        vid_t* row = out.col_indices.data() +
                     static_cast<std::size_t>(
                         out.row_offsets[static_cast<std::size_t>(u)]);
        const auto len = static_cast<std::int64_t>(nbrs.size());
        for (std::int64_t k = 0; k < len; ++k) {
          if (k + sim::kGatherPrefetchDistance < len) {
            sim::prefetch(&new_of_old[static_cast<std::size_t>(
                nbrs[static_cast<std::size_t>(
                    k + sim::kGatherPrefetchDistance)])]);
          }
          row[k] = new_of_old[static_cast<std::size_t>(
              nbrs[static_cast<std::size_t>(k)])];
        }
        std::sort(row, row + len);
      },
      sim::Schedule::kDynamic, 64);

  return out;
}

}  // namespace gcol::graph
