#include "graph/build.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/rng.hpp"

namespace gcol::graph {

bool Csr::check() const {
  if (num_vertices < 0) return false;
  if (row_offsets.size() != static_cast<std::size_t>(num_vertices) + 1) {
    return false;
  }
  if (row_offsets.front() != 0) return false;
  if (row_offsets.back() != static_cast<eid_t>(col_indices.size())) {
    return false;
  }
  for (vid_t v = 0; v < num_vertices; ++v) {
    const auto row = static_cast<std::size_t>(v);
    if (row_offsets[row] > row_offsets[row + 1]) return false;
    const auto adj = neighbors(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      const vid_t u = adj[i];
      if (u < 0 || u >= num_vertices) return false;
      if (u == v) return false;                      // self loop
      if (i > 0 && adj[i - 1] >= u) return false;    // unsorted or duplicate
    }
  }
  return true;
}

Csr build_csr(const Coo& coo, const BuildOptions& options) {
  const vid_t n = coo.num_vertices;
  if (n < 0) throw std::invalid_argument("build_csr: negative vertex count");
  for (std::size_t i = 0; i < coo.num_edges(); ++i) {
    if (coo.src[i] < 0 || coo.src[i] >= n || coo.dst[i] < 0 ||
        coo.dst[i] >= n) {
      throw std::out_of_range("build_csr: edge endpoint out of range");
    }
  }

  // Pass 1: count directed edges per row (both directions if symmetrizing).
  std::vector<eid_t> counts(static_cast<std::size_t>(n) + 1, 0);
  auto keep = [&](vid_t u, vid_t v) {
    return !(options.remove_self_loops && u == v);
  };
  for (std::size_t i = 0; i < coo.num_edges(); ++i) {
    const vid_t u = coo.src[i];
    const vid_t v = coo.dst[i];
    if (!keep(u, v)) continue;
    ++counts[static_cast<std::size_t>(u) + 1];
    if (options.symmetrize) ++counts[static_cast<std::size_t>(v) + 1];
  }
  for (vid_t v = 0; v < n; ++v) {
    counts[static_cast<std::size_t>(v) + 1] +=
        counts[static_cast<std::size_t>(v)];
  }

  // Pass 2: scatter columns.
  Csr csr;
  csr.num_vertices = n;
  csr.row_offsets = counts;  // becomes final offsets after dedup compaction
  std::vector<vid_t> cols(static_cast<std::size_t>(counts.back()));
  std::vector<eid_t> cursor(counts.begin(), counts.end() - 1);
  for (std::size_t i = 0; i < coo.num_edges(); ++i) {
    const vid_t u = coo.src[i];
    const vid_t v = coo.dst[i];
    if (!keep(u, v)) continue;
    cols[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    if (options.symmetrize) {
      cols[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] =
          u;
    }
  }

  // Pass 3: sort each adjacency list; optionally deduplicate in place.
  eid_t write = 0;
  for (vid_t v = 0; v < n; ++v) {
    const auto begin = static_cast<std::size_t>(
        csr.row_offsets[static_cast<std::size_t>(v)]);
    const auto end = static_cast<std::size_t>(
        csr.row_offsets[static_cast<std::size_t>(v) + 1]);
    std::sort(cols.begin() + static_cast<std::ptrdiff_t>(begin),
              cols.begin() + static_cast<std::ptrdiff_t>(end));
    const eid_t row_start = write;
    for (std::size_t i = begin; i < end; ++i) {
      if (options.deduplicate && write > row_start &&
          cols[static_cast<std::size_t>(write - 1)] == cols[i]) {
        continue;
      }
      cols[static_cast<std::size_t>(write++)] = cols[i];
    }
    // Safe to overwrite: row v's old start is no longer needed, and row
    // v + 1 reads its own (still pre-compaction) start slot next iteration.
    csr.row_offsets[static_cast<std::size_t>(v)] = row_start;
  }
  csr.row_offsets[static_cast<std::size_t>(n)] = write;
  cols.resize(static_cast<std::size_t>(write));
  csr.col_indices = std::move(cols);
  assert(csr.check());
  return csr;
}

Csr permute_vertices(const Csr& csr, std::span<const vid_t> new_id_of) {
  if (new_id_of.size() != static_cast<std::size_t>(csr.num_vertices)) {
    throw std::invalid_argument("permute_vertices: wrong permutation size");
  }
  Coo coo;
  coo.num_vertices = csr.num_vertices;
  coo.reserve(static_cast<std::size_t>(csr.num_edges()));
  for (vid_t v = 0; v < csr.num_vertices; ++v) {
    for (const vid_t u : csr.neighbors(v)) {
      coo.add_edge(new_id_of[static_cast<std::size_t>(v)],
                   new_id_of[static_cast<std::size_t>(u)]);
    }
  }
  // Edges already appear in both directions; just clean and sort.
  return build_csr(coo, {.symmetrize = false});
}

Csr shuffle_vertices(const Csr& csr, std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(csr.num_vertices);
  std::vector<vid_t> new_id_of(n);
  for (std::size_t i = 0; i < n; ++i) new_id_of[i] = static_cast<vid_t>(i);
  const sim::CounterRng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_below(i, static_cast<std::uint64_t>(i)));
    std::swap(new_id_of[i - 1], new_id_of[j]);
  }
  return permute_vertices(csr, new_id_of);
}

Coo to_coo(const Csr& csr) {
  Coo coo;
  coo.num_vertices = csr.num_vertices;
  coo.reserve(static_cast<std::size_t>(csr.num_edges()));
  for (vid_t v = 0; v < csr.num_vertices; ++v) {
    for (const vid_t u : csr.neighbors(v)) coo.add_edge(v, u);
  }
  return coo;
}

}  // namespace gcol::graph
