// Ablation: post-processing the paper's fast heuristics with Culberson
// iterated-greedy and class balancing. Quantifies how much of the quality
// gap between the fast implementations (Gunrock IS, Naumov CC) and the
// quality ones (GraphBLAST MIS, greedy) a cheap sequential post-pass
// recovers, and how balancing changes the class-size distribution that
// bounds downstream parallelism.

#include <cstdio>
#include <string>

#include "common/bench_util.hpp"
#include "core/recolor.hpp"
#include "core/registry.hpp"
#include "core/verify.hpp"
#include "graph/datasets.hpp"

namespace {

using namespace gcol;

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  std::printf("== Ablation: iterated-greedy + balancing post-passes "
              "(scale=%.3f) ==\n\n",
              args.scale);

  for (const char* dataset : {"G3_circuit", "cage13", "af_shell3"}) {
    const graph::Csr csr =
        graph::build_dataset(*graph::find_dataset(dataset), args.scale);
    std::printf("-- %s (V=%d, E=%lld) --\n", dataset, csr.num_vertices,
                static_cast<long long>(csr.num_undirected_edges()));
    bench::TablePrinter table(
        {"algorithm", "colors", "after_recolor", "recolor_ms", "imbalance",
         "after_balance"},
        args.csv);
    for (const char* name :
         {"gunrock_is", "gunrock_hash", "naumov_jpl", "naumov_cc", "grb_is",
          "grb_mis", "cpu_greedy"}) {
      const color::AlgorithmSpec* spec = color::find_algorithm(name);
      color::Options options;
      options.seed = args.seed;
      const color::Coloring base = spec->run(csr, options);
      const color::Coloring improved =
          color::iterated_greedy_recolor(csr, base);
      const color::Coloring balanced = color::balance_colors(csr, base);
      if (!color::is_valid_coloring(csr, improved.colors) ||
          !color::is_valid_coloring(csr, balanced.colors)) {
        std::fprintf(stderr, "INVALID post-pass output for %s\n", name);
        return 1;
      }
      table.add_row({spec->display_name,
                     std::to_string(base.num_colors),
                     std::to_string(improved.num_colors),
                     bench::fmt(improved.elapsed_ms),
                     bench::fmt(color::class_imbalance(base.colors)),
                     bench::fmt(color::class_imbalance(balanced.colors))});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("Reading: after_recolor <= colors always (Culberson "
              "invariant); the fast heuristics recover most of the gap to "
              "greedy. after_balance is largest-class/average after "
              "balancing (1.0 = perfect).\n");
  return 0;
}
