#include "sim/thread_pool.hpp"

#include <cassert>

#include "sim/simd.hpp"

namespace gcol::sim {

namespace {

// Spin-then-park tuning. The pause phase covers back-to-back launches (the
// benchmark / tight-iteration case); the yield phase covers oversubscribed
// boxes where the peer needs the core to make progress (sched_yield hands it
// over without a futex round-trip); parking covers idle gaps so an idle pool
// consumes no CPU. When the pool is oversubscribed (more slots than cores —
// the single-core-container case) pause spinning is strictly
// counterproductive: the peer we are waiting on needs the core we are
// burning, so the pause phase is skipped and parking comes sooner.
// The pause instruction itself is sim::cpu_relax (sim/simd.hpp), the shared
// arch shim (_mm_pause on x86, yield on ARM, a fence elsewhere).
constexpr int kPauseSpins = 128;
constexpr int kYieldSpins = 32;
constexpr int kOversubscribedYieldSpins = 16;

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads)
    : num_slots_(num_threads < 1 ? 1u : num_threads),
      mailboxes_(std::make_unique<Mailbox[]>(num_slots_)),
      tasks_(std::make_unique<TaskSlot[]>(num_slots_)),
      errors_(num_slots_) {
  const unsigned cores = std::thread::hardware_concurrency();
  const bool oversubscribed = cores != 0 && num_slots_ > cores;
  pause_spins_ = oversubscribed ? 0 : kPauseSpins;
  yield_spins_ = oversubscribed ? kOversubscribedYieldSpins : kYieldSpins;
  threads_.reserve(num_slots_ - 1);
  for (unsigned worker = 1; worker < num_slots_; ++worker) {
    threads_.emplace_back([this, worker] { worker_loop(worker); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown_.store(true, std::memory_order_release);
  for (unsigned worker = 1; worker < num_slots_; ++worker) {
    mailboxes_[worker].gen.fetch_add(1, std::memory_order_seq_cst);
    mailboxes_[worker].gen.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void ThreadPool::run(FunctionRef<void(unsigned)> job) {
  if (num_slots_ == 1) {
    job(0);
    return;
  }
  run_on(1, num_slots_, job);
}

void ThreadPool::run_on(unsigned first, unsigned count,
                        FunctionRef<void(unsigned)> job) {
  if (count <= 1) {
    job(0);
    return;
  }
  assert(first >= 1 && first + count - 1 <= num_slots_);

  // Publish the job, then open each participating worker's mailbox. The
  // seq_cst generation bump orders the task/local stores before the worker's
  // acquire load of gen, and orders the bump against the parked read below
  // (Dekker-style: a worker either sees the new generation before parking or
  // is counted in parked before we read it).
  TaskSlot& task = tasks_[first];
  task.job = job;
  task.had_error.store(false, std::memory_order_relaxed);
  task.remaining.store(count - 1, std::memory_order_relaxed);
  for (unsigned local = 1; local < count; ++local) {
    Mailbox& mb = mailboxes_[first + local - 1];
    mb.task = &task;
    mb.local = local;
    mb.gen.fetch_add(1, std::memory_order_seq_cst);
    if (mb.parked.load(std::memory_order_seq_cst) != 0) mb.gen.notify_all();
  }

  // The calling thread is local slot 0.
  std::exception_ptr caller_error;
  try {
    job(0);
  } catch (...) {
    caller_error = std::current_exception();
  }

  // Join: spin, yield, then park until every slot has checked out. The
  // acquire loads pair with the workers' release decrements, making all
  // job side effects (and error captures) visible before we return.
  if (task.remaining.load(std::memory_order_acquire) != 0) {
    for (int i = 0; i < pause_spins_; ++i) {
      cpu_relax();
      if (task.remaining.load(std::memory_order_acquire) == 0) break;
    }
  }
  if (task.remaining.load(std::memory_order_acquire) != 0) {
    for (int i = 0; i < yield_spins_; ++i) {
      std::this_thread::yield();
      if (task.remaining.load(std::memory_order_acquire) == 0) break;
    }
  }
  if (task.remaining.load(std::memory_order_acquire) != 0) {
    task.launcher_parked.store(true, std::memory_order_seq_cst);
    for (;;) {
      const unsigned left = task.remaining.load(std::memory_order_acquire);
      if (left == 0) break;
      task.remaining.wait(left, std::memory_order_acquire);
    }
    task.launcher_parked.store(false, std::memory_order_relaxed);
  }

  if (caller_error != nullptr ||
      task.had_error.load(std::memory_order_relaxed)) {
    rethrow_first_error(first, count, caller_error);
  }
}

void ThreadPool::rethrow_first_error(unsigned first, unsigned count,
                                     std::exception_ptr caller_error) {
  // Local slot 0 (the launcher) is the lowest slot; workers follow in local
  // order, which is their OS-worker order within the range.
  std::exception_ptr chosen = caller_error;
  for (unsigned worker = first; worker < first + count - 1; ++worker) {
    std::exception_ptr& error = errors_[worker];
    if (error != nullptr && chosen == nullptr) chosen = error;
    error = nullptr;
  }
  if (chosen != nullptr) std::rethrow_exception(chosen);
}

void ThreadPool::worker_loop(unsigned worker) {
  Mailbox& mb = mailboxes_[worker];
  std::uint32_t seen = 0;
  for (;;) {
    // Wait for a new generation on our own mailbox: spin, yield, then park
    // on the futex. The parked increment is seq_cst so the launcher's
    // "parked?" check cannot miss us while we miss its generation bump.
    std::uint32_t gen = mb.gen.load(std::memory_order_acquire);
    if (gen == seen) {
      for (int i = 0; i < pause_spins_; ++i) {
        cpu_relax();
        gen = mb.gen.load(std::memory_order_acquire);
        if (gen != seen) break;
      }
    }
    if (gen == seen) {
      for (int i = 0; i < yield_spins_; ++i) {
        std::this_thread::yield();
        gen = mb.gen.load(std::memory_order_acquire);
        if (gen != seen) break;
      }
    }
    if (gen == seen) {
      mb.parked.fetch_add(1, std::memory_order_seq_cst);
      for (;;) {
        gen = mb.gen.load(std::memory_order_acquire);
        if (gen != seen) break;
        mb.gen.wait(seen, std::memory_order_relaxed);
      }
      mb.parked.fetch_sub(1, std::memory_order_relaxed);
    }
    seen = gen;
    if (shutdown_.load(std::memory_order_acquire)) return;

    TaskSlot* task = mb.task;
    const unsigned local = mb.local;
    try {
      task->job(local);
    } catch (...) {
      errors_[worker] = std::current_exception();
      task->had_error.store(true, std::memory_order_relaxed);
    }

    // Check out of the barrier; wake the launcher only if it really parked.
    if (task->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        task->launcher_parked.load(std::memory_order_seq_cst)) {
      task->remaining.notify_all();
    }
  }
}

}  // namespace gcol::sim
