#pragma once
// The virtual-GPU "device": kernel launches over index ranges with implicit
// global barriers, mirroring the bulk-synchronous execution model the paper's
// GPU implementations run under.
//
// Why this exists: the paper's performance analysis is phrased in terms of
// (a) how many kernel launches / global synchronizations an algorithm needs,
// (b) whether work inside a launch is load balanced, and (c) whether atomics
// are used. This façade preserves all three cost sources on a CPU:
//   - each parallel_for is one "kernel launch" and ends at a barrier
//     (ThreadPool::run joins all slots),
//   - static vs. dynamic scheduling exposes the load-balancing axis,
//   - atomics.hpp provides device-style atomics.
// A launch counter lets benchmarks report "global syncs" per algorithm.

#include <atomic>
#include <cstdint>
#include <memory>

#include "sim/thread_pool.hpp"

namespace gcol::sim {

/// Scheduling policy for work items inside one kernel launch.
enum class Schedule {
  kStatic,   ///< contiguous blocks, one per worker (thread-per-vertex style)
  kDynamic,  ///< chunked work queue (load-balanced, advance-operator style)
};

/// Process-wide virtual device. Thread count comes from GCOL_THREADS if set,
/// otherwise std::thread::hardware_concurrency().
class Device {
 public:
  /// The global device instance (constructed on first use).
  static Device& instance();

  /// A device with an explicit worker count (mainly for tests).
  explicit Device(unsigned num_workers);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] unsigned num_workers() const noexcept { return pool_.size(); }

  /// Launches body(i) for every i in [0, n) and blocks until done (one
  /// kernel launch + global barrier). `body` must be safe to invoke
  /// concurrently from different workers for distinct i.
  template <typename Body>
  void parallel_for(std::int64_t n, Body&& body,
                    Schedule schedule = Schedule::kStatic,
                    std::int64_t chunk = 0) {
    if (n <= 0) return;
    launches_.fetch_add(1, std::memory_order_relaxed);
    const auto workers = static_cast<std::int64_t>(pool_.size());
    if (workers == 1 || n == 1) {
      for (std::int64_t i = 0; i < n; ++i) body(i);
      return;
    }
    if (schedule == Schedule::kStatic) {
      const std::function<void(unsigned)> job = [&](unsigned slot) {
        const std::int64_t per = (n + workers - 1) / workers;
        const std::int64_t begin = static_cast<std::int64_t>(slot) * per;
        const std::int64_t end = begin + per < n ? begin + per : n;
        for (std::int64_t i = begin; i < end; ++i) body(i);
      };
      pool_.run(job);
    } else {
      if (chunk <= 0) chunk = default_chunk(n, workers);
      std::atomic<std::int64_t> next{0};
      const std::function<void(unsigned)> job = [&](unsigned) {
        for (;;) {
          const std::int64_t begin =
              next.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= n) return;
          const std::int64_t end = begin + chunk < n ? begin + chunk : n;
          for (std::int64_t i = begin; i < end; ++i) body(i);
        }
      };
      pool_.run(job);
    }
  }

  /// Launches body(slot, num_slots) once per worker slot — the analogue of a
  /// cooperative kernel where each block owns a slice it carves out itself.
  template <typename Body>
  void parallel_slots(Body&& body) {
    launches_.fetch_add(1, std::memory_order_relaxed);
    const unsigned workers = pool_.size();
    const std::function<void(unsigned)> job = [&](unsigned slot) {
      body(slot, workers);
    };
    pool_.run(job);
  }

  /// Number of kernel launches since construction or the last
  /// reset_launch_count(). Benchmarks use this as the "global
  /// synchronizations" metric the paper reasons about.
  [[nodiscard]] std::uint64_t launch_count() const noexcept {
    return launches_.load(std::memory_order_relaxed);
  }
  void reset_launch_count() noexcept {
    launches_.store(0, std::memory_order_relaxed);
  }

 private:
  Device();  // reads GCOL_THREADS / hardware_concurrency

  static std::int64_t default_chunk(std::int64_t n, std::int64_t workers) {
    const std::int64_t chunk = n / (workers * 8);
    return chunk < 1 ? 1 : chunk;
  }

  ThreadPool pool_;
  std::atomic<std::uint64_t> launches_{0};
};

}  // namespace gcol::sim
