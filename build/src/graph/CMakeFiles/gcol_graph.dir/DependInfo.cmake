
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/build.cpp" "src/graph/CMakeFiles/gcol_graph.dir/build.cpp.o" "gcc" "src/graph/CMakeFiles/gcol_graph.dir/build.cpp.o.d"
  "/root/repo/src/graph/datasets.cpp" "src/graph/CMakeFiles/gcol_graph.dir/datasets.cpp.o" "gcc" "src/graph/CMakeFiles/gcol_graph.dir/datasets.cpp.o.d"
  "/root/repo/src/graph/generators/banded.cpp" "src/graph/CMakeFiles/gcol_graph.dir/generators/banded.cpp.o" "gcc" "src/graph/CMakeFiles/gcol_graph.dir/generators/banded.cpp.o.d"
  "/root/repo/src/graph/generators/erdos_renyi.cpp" "src/graph/CMakeFiles/gcol_graph.dir/generators/erdos_renyi.cpp.o" "gcc" "src/graph/CMakeFiles/gcol_graph.dir/generators/erdos_renyi.cpp.o.d"
  "/root/repo/src/graph/generators/grid.cpp" "src/graph/CMakeFiles/gcol_graph.dir/generators/grid.cpp.o" "gcc" "src/graph/CMakeFiles/gcol_graph.dir/generators/grid.cpp.o.d"
  "/root/repo/src/graph/generators/mesh.cpp" "src/graph/CMakeFiles/gcol_graph.dir/generators/mesh.cpp.o" "gcc" "src/graph/CMakeFiles/gcol_graph.dir/generators/mesh.cpp.o.d"
  "/root/repo/src/graph/generators/random_regular.cpp" "src/graph/CMakeFiles/gcol_graph.dir/generators/random_regular.cpp.o" "gcc" "src/graph/CMakeFiles/gcol_graph.dir/generators/random_regular.cpp.o.d"
  "/root/repo/src/graph/generators/rgg.cpp" "src/graph/CMakeFiles/gcol_graph.dir/generators/rgg.cpp.o" "gcc" "src/graph/CMakeFiles/gcol_graph.dir/generators/rgg.cpp.o.d"
  "/root/repo/src/graph/generators/rmat.cpp" "src/graph/CMakeFiles/gcol_graph.dir/generators/rmat.cpp.o" "gcc" "src/graph/CMakeFiles/gcol_graph.dir/generators/rmat.cpp.o.d"
  "/root/repo/src/graph/mmio.cpp" "src/graph/CMakeFiles/gcol_graph.dir/mmio.cpp.o" "gcc" "src/graph/CMakeFiles/gcol_graph.dir/mmio.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/graph/CMakeFiles/gcol_graph.dir/stats.cpp.o" "gcc" "src/graph/CMakeFiles/gcol_graph.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gcol_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
