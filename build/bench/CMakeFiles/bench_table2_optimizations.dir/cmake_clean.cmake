file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_optimizations.dir/bench_table2_optimizations.cpp.o"
  "CMakeFiles/bench_table2_optimizations.dir/bench_table2_optimizations.cpp.o.d"
  "bench_table2_optimizations"
  "bench_table2_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
