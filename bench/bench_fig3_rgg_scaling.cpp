// Figure 3 reproduction: scalability on DIMACS10-style random geometric
// graphs. For each RGG scale, prints runtime and color count for the best
// Gunrock (IS) and GraphBLAST (IS) implementations — the data behind all
// four panels (runtime/colors vs vertices/edges).
//
// Paper claims under test: Gunrock wins at small scales (lower overhead);
// GraphBLAST narrows the gap as scale grows (the paper sees a crossover at
// scale 23-24); Gunrock needs ~1.14x fewer colors throughout.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.hpp"
#include "graph/build.hpp"
#include "graph/generators/rgg.hpp"

namespace {

using namespace gcol;

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  std::printf("== Figure 3: RGG scaling, rgg_n_2_{%d..%d}_s0 (runs=%d) "
              "==\n",
              args.min_rgg_scale, args.max_rgg_scale, args.runs);
  std::printf("(paper sweeps scales 15..24; cap with --max-rgg to fit your "
              "machine)\n\n");

  const color::AlgorithmSpec* gunrock = color::find_algorithm("gunrock_is");
  const color::AlgorithmSpec* graphblast = color::find_algorithm("grb_is");

  bench::TablePrinter table(
      {"scale", "V", "E", "gunrock_ms", "grb_ms", "gunrock_colors",
       "grb_colors", "grb/gunrock_ms", "color_ratio"},
      args.csv);

  std::vector<double> runtime_ratios;
  std::vector<double> color_ratios;
  for (int scale = args.min_rgg_scale; scale <= args.max_rgg_scale; ++scale) {
    const graph::Csr csr = graph::build_csr(
        graph::generate_rgg(scale, {.seed = args.seed + 200}));
    const bench::Measurement g =
        bench::run_averaged(*gunrock, csr, args.seed, args.runs, args.frontier_mode, args.reorder, args.graph_replay);
    const bench::Measurement b =
        bench::run_averaged(*graphblast, csr, args.seed, args.runs, args.frontier_mode, args.reorder, args.graph_replay);
    if (!g.valid || !b.valid) {
      std::fprintf(stderr, "INVALID coloring at scale %d\n", scale);
      return 1;
    }
    const double runtime_ratio = b.ms_avg / g.ms_avg;
    const double color_ratio =
        static_cast<double>(b.result.num_colors) /
        static_cast<double>(g.result.num_colors);
    runtime_ratios.push_back(runtime_ratio);
    color_ratios.push_back(color_ratio);
    table.add_row({std::to_string(scale), std::to_string(csr.num_vertices),
                   std::to_string(csr.num_undirected_edges()),
                   bench::fmt(g.ms_avg), bench::fmt(b.ms_avg),
                   std::to_string(g.result.num_colors),
                   std::to_string(b.result.num_colors),
                   bench::fmt(runtime_ratio), bench::fmt(color_ratio)});
  }
  table.print();

  std::printf("\n== summary vs paper claims ==\n");
  std::printf("GraphBLAST/Gunrock runtime ratio: %.2fx at scale %d -> %.2fx "
              "at scale %d (paper: Gunrock wins small scales, crossover at "
              "23-24)\n",
              runtime_ratios.front(), args.min_rgg_scale,
              runtime_ratios.back(), args.max_rgg_scale);
  std::printf("GraphBLAST/Gunrock color ratio geomean: %.2fx (paper: Gunrock "
              "1.14x fewer colors)\n",
              bench::geomean(color_ratios));
  return 0;
}
