# Empty compiler generated dependencies file for gcol_bench_util.
# This may be replaced when dependencies are built.
