#!/usr/bin/env bash
# One-command reproduction of the paper's evaluation: build, test, run every
# table/figure harness, and archive the outputs next to EXPERIMENTS.md.
#
#   scripts/reproduce.sh [--scale=F] [--runs=N] ...   (flags forwarded to
#   every table harness; bench_micro_primitives takes google-benchmark
#   flags and is run without them)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

{
  for b in build/bench/bench_*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "===== $(basename "$b") ====="
    if [ "$(basename "$b")" = "bench_micro_primitives" ]; then
      "$b"
    else
      "$b" "$@"
    fi
    echo
  done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt and bench_output.txt"
