#pragma once
// Wall-clock timing helper used by every benchmark harness. The paper reports
// averaged elapsed milliseconds over 10 runs; Stopwatch + time_ms mirror that.

#include <chrono>

namespace gcol::sim {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed milliseconds since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn()` once and returns its wall-clock duration in milliseconds.
template <typename Fn>
double time_ms(Fn&& fn) {
  Stopwatch watch;
  fn();
  return watch.elapsed_ms();
}

}  // namespace gcol::sim
