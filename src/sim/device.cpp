#include "sim/device.hpp"

#include <cstdlib>
#include <string>

namespace gcol::sim {

namespace {

unsigned env_thread_count() {
  if (const char* env = std::getenv("GCOL_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1 && parsed <= 4096) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

}  // namespace

Device::Device()
    : pool_(env_thread_count()),
      telemetry_(std::make_unique<SlotTelemetry[]>(pool_.size())) {}

Device::Device(unsigned num_workers)
    : pool_(num_workers),
      telemetry_(std::make_unique<SlotTelemetry[]>(pool_.size())) {}

Device& Device::instance() {
  static Device device;
  return device;
}

}  // namespace gcol::sim
