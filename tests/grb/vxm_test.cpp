#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "../testing/fixtures.hpp"
#include "graph/generators/erdos_renyi.hpp"
#include "graphblas/grb.hpp"

namespace gcol::grb {
namespace {

using gcol::graph::Csr;

/// Serial reference: w[j] = add over neighbors i of mul(u[i], 1), entries
/// only where at least one stored u entry contributes.
template <typename AddMonoid, typename MulOp>
void reference_vxm(const Csr& csr, const Vector<std::int64_t>& u,
                   Semiring<AddMonoid, MulOp> s,
                   std::vector<std::int64_t>& out_values,
                   std::vector<bool>& out_present) {
  const auto n = static_cast<std::size_t>(csr.num_vertices);
  out_values.assign(n, s.add.identity);
  out_present.assign(n, false);
  for (vid_t j = 0; j < csr.num_vertices; ++j) {
    for (const vid_t i : csr.neighbors(j)) {
      std::int64_t value = 0;
      if (u.extract_element(&value, i) != Info::kSuccess) continue;
      out_values[static_cast<std::size_t>(j)] =
          s.add(out_values[static_cast<std::size_t>(j)],
                s.mul(value, std::int64_t{1}));
      out_present[static_cast<std::size_t>(j)] = true;
    }
  }
}

void expect_matches_reference(const Csr& csr, const Vector<std::int64_t>& u,
                              VxmMode mode) {
  const Matrix<std::int64_t> a(csr);
  Vector<std::int64_t> w(csr.num_vertices);
  Descriptor desc;
  desc.vxm_mode = mode;
  ASSERT_EQ(vxm(w, nullptr, max_times_semiring<std::int64_t>(), u, a, desc),
            Info::kSuccess);

  std::vector<std::int64_t> expected_values;
  std::vector<bool> expected_present;
  reference_vxm(csr, u, max_times_semiring<std::int64_t>(), expected_values,
                expected_present);
  for (vid_t j = 0; j < csr.num_vertices; ++j) {
    std::int64_t value = 0;
    const bool present = w.extract_element(&value, j) == Info::kSuccess;
    EXPECT_EQ(present, static_cast<bool>(expected_present[
                           static_cast<std::size_t>(j)]))
        << "presence mismatch at " << j;
    if (present && expected_present[static_cast<std::size_t>(j)]) {
      EXPECT_EQ(value, expected_values[static_cast<std::size_t>(j)])
          << "value mismatch at " << j;
    }
  }
}

TEST(Vxm, PullMatchesReferenceOnDenseInput) {
  const Csr csr = gcol::testing::petersen_graph();
  Vector<std::int64_t> u(csr.num_vertices);
  u.adopt_dense({5, 3, 8, 1, 9, 2, 7, 6, 4, 10});
  expect_matches_reference(csr, u, VxmMode::kPull);
}

TEST(Vxm, PushAndPullAgreeOnSparseInput) {
  const Csr csr = gcol::testing::cycle_graph(12);
  Vector<std::int64_t> u(csr.num_vertices);
  u.set_element(0, 100);
  u.set_element(6, 50);
  expect_matches_reference(csr, u, VxmMode::kPull);
  expect_matches_reference(csr, u, VxmMode::kPush);
}

TEST(Vxm, PushPullAgreeOnRandomGraph) {
  const Csr csr = gcol::graph::build_csr(
      gcol::graph::generate_erdos_renyi(300, 1200, 77));
  Vector<std::int64_t> u(csr.num_vertices);
  for (Index i = 0; i < csr.num_vertices; i += 3) {
    u.set_element(i, (i * 37) % 1000 + 1);
  }
  expect_matches_reference(csr, u, VxmMode::kPull);
  expect_matches_reference(csr, u, VxmMode::kPush);

  // Auto mode must agree with both.
  const Matrix<std::int64_t> a(csr);
  Vector<std::int64_t> w_auto(csr.num_vertices), w_pull(csr.num_vertices);
  Descriptor pull;
  pull.vxm_mode = VxmMode::kPull;
  ASSERT_EQ(vxm(w_auto, nullptr, max_times_semiring<std::int64_t>(), u, a),
            Info::kSuccess);
  ASSERT_EQ(
      vxm(w_pull, nullptr, max_times_semiring<std::int64_t>(), u, a, pull),
      Info::kSuccess);
  for (vid_t j = 0; j < csr.num_vertices; ++j) {
    std::int64_t va = -1, vp = -1;
    const bool ha = w_auto.extract_element(&va, j) == Info::kSuccess;
    const bool hp = w_pull.extract_element(&vp, j) == Info::kSuccess;
    EXPECT_EQ(ha, hp);
    if (ha && hp) {
      EXPECT_EQ(va, vp);
    }
  }
}

TEST(Vxm, MaskRestrictsComputedOutputs) {
  const Csr csr = gcol::testing::clique_graph(5);
  const Matrix<std::int64_t> a(csr);
  Vector<std::int64_t> u(5);
  u.adopt_dense({1, 2, 3, 4, 5});
  Vector<std::int64_t> mask(5);
  mask.adopt_dense({1, 0, 1, 0, 0});
  Vector<std::int64_t> w(5);
  ASSERT_EQ(vxm(w, &mask, max_times_semiring<std::int64_t>(), u, a),
            Info::kSuccess);
  std::int64_t out = 0;
  EXPECT_EQ(w.extract_element(&out, 0), Info::kSuccess);
  EXPECT_EQ(out, 5);  // max of neighbors {2,3,4,5}
  EXPECT_EQ(w.extract_element(&out, 2), Info::kSuccess);
  EXPECT_EQ(out, 5);
  EXPECT_EQ(w.extract_element(&out, 1), Info::kNoValue);  // masked out
}

TEST(Vxm, BooleanSemiringGivesReachabilityIndicator) {
  const Csr csr = gcol::testing::path_graph(5);
  const Matrix<std::int64_t> a(csr);
  Vector<std::int64_t> frontier(5);
  frontier.set_element(2, 1);
  Vector<std::int64_t> w(5);
  ASSERT_EQ(vxm(w, nullptr, boolean_semiring<std::int64_t>(), frontier, a),
            Info::kSuccess);
  std::int64_t out = 0;
  EXPECT_EQ(w.extract_element(&out, 1), Info::kSuccess);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(w.extract_element(&out, 3), Info::kSuccess);
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(w.has(0));
  EXPECT_FALSE(w.has(2));  // no self loop
}

TEST(Vxm, IsolatedVerticesProduceNoEntry) {
  const Csr csr = gcol::testing::empty_graph(4);
  const Matrix<std::int64_t> a(csr);
  Vector<std::int64_t> u(4);
  u.fill(9);
  Vector<std::int64_t> w(4);
  ASSERT_EQ(vxm(w, nullptr, max_times_semiring<std::int64_t>(), u, a),
            Info::kSuccess);
  EXPECT_EQ(w.nvals(), 0);
}

TEST(Vxm, DimensionMismatchRejected) {
  const Csr csr = gcol::testing::path_graph(4);
  const Matrix<std::int64_t> a(csr);
  Vector<std::int64_t> u(5), w(4);
  EXPECT_EQ(vxm(w, nullptr, max_times_semiring<std::int64_t>(), u, a),
            Info::kDimensionMismatch);
}

TEST(Vxm, ReplaceDropsStaleEntries) {
  const Csr csr = gcol::testing::path_graph(4);
  const Matrix<std::int64_t> a(csr);
  Vector<std::int64_t> u(4);
  u.adopt_dense({1, 2, 3, 4});
  Vector<std::int64_t> w(4);
  w.fill(-99);
  Vector<std::int64_t> mask(4);
  mask.adopt_dense({1, 1, 0, 0});
  Descriptor desc;
  desc.replace = true;
  ASSERT_EQ(vxm(w, &mask, max_times_semiring<std::int64_t>(), u, a, desc),
            Info::kSuccess);
  // Only masked positions survive; the old -99 entries are gone.
  EXPECT_EQ(w.nvals(), 2);
  std::int64_t out = 0;
  EXPECT_EQ(w.extract_element(&out, 0), Info::kSuccess);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(w.extract_element(&out, 1), Info::kSuccess);
  EXPECT_EQ(out, 3);  // max(1, 3)
  EXPECT_FALSE(w.has(2));
  EXPECT_FALSE(w.has(3));
}

TEST(Vxm, ComplementMaskComputesOnlyUnsetPositions) {
  const Csr csr = gcol::testing::cycle_graph(4);
  const Matrix<std::int64_t> a(csr);
  Vector<std::int64_t> u(4);
  u.adopt_dense({10, 20, 30, 40});
  Vector<std::int64_t> w(4);
  w.fill(0);
  Vector<std::int64_t> mask(4);
  mask.adopt_dense({1, 0, 1, 0});
  Descriptor desc;
  desc.mask_complement = true;
  ASSERT_EQ(vxm(w, &mask, max_times_semiring<std::int64_t>(), u, a, desc),
            Info::kSuccess);
  const auto dv = w.dense_values();
  EXPECT_EQ(dv[0], 0);   // masked out by complement
  EXPECT_EQ(dv[1], 30);  // max of neighbors {0, 2} -> max(10, 30)
  EXPECT_EQ(dv[2], 0);
  EXPECT_EQ(dv[3], 30);  // neighbors {2, 0}
}

TEST(Vxm, StructureMaskIgnoresValues) {
  const Csr csr = gcol::testing::path_graph(3);
  const Matrix<std::int64_t> a(csr);
  Vector<std::int64_t> u(3);
  u.adopt_dense({5, 6, 7});
  Vector<std::int64_t> w(3);
  Vector<std::int64_t> mask(3);
  mask.set_element(1, 0);  // present but ZERO-valued entry
  Descriptor desc;
  desc.mask_structure = true;
  ASSERT_EQ(vxm(w, &mask, max_times_semiring<std::int64_t>(), u, a, desc),
            Info::kSuccess);
  std::int64_t out = 0;
  EXPECT_EQ(w.extract_element(&out, 1), Info::kSuccess);  // structure allows
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(w.has(0));
}

TEST(Mxv, AgreesWithVxmOnSymmetricMatrix) {
  const Csr csr = gcol::testing::petersen_graph();
  const Matrix<std::int64_t> a(csr);
  Vector<std::int64_t> u(csr.num_vertices);
  u.adopt_dense({5, 3, 8, 1, 9, 2, 7, 6, 4, 10});
  Vector<std::int64_t> via_vxm(csr.num_vertices), via_mxv(csr.num_vertices);
  ASSERT_EQ(vxm(via_vxm, nullptr, max_times_semiring<std::int64_t>(), u, a),
            Info::kSuccess);
  ASSERT_EQ(mxv(via_mxv, nullptr, max_times_semiring<std::int64_t>(), a, u),
            Info::kSuccess);
  for (vid_t j = 0; j < csr.num_vertices; ++j) {
    std::int64_t x = -1, y = -2;
    EXPECT_EQ(via_vxm.extract_element(&x, j),
              via_mxv.extract_element(&y, j));
    EXPECT_EQ(x, y);
  }
}

TEST(Matrix, WrapsCsrPattern) {
  const Csr csr = gcol::testing::cycle_graph(6);
  const Matrix<int> a(csr);
  EXPECT_EQ(a.nrows(), 6);
  EXPECT_EQ(a.nvals(), 12);
  EXPECT_TRUE(a.is_pattern());
  EXPECT_EQ(a.value_at(0), 1);
}

TEST(Matrix, ExplicitValues) {
  const Csr csr = gcol::testing::path_graph(3);
  std::vector<int> values(static_cast<std::size_t>(csr.num_edges()), 7);
  const Matrix<int> a(csr, std::move(values));
  EXPECT_FALSE(a.is_pattern());
  EXPECT_EQ(a.value_at(1), 7);
}

}  // namespace
}  // namespace gcol::grb
