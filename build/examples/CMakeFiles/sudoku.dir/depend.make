# Empty dependencies file for sudoku.
# This may be replaced when dependencies are built.
