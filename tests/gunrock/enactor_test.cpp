#include "gunrock/enactor.hpp"

#include <gtest/gtest.h>

namespace gcol::gr {
namespace {

TEST(Enactor, StopsWhenBodyReturnsFalse) {
  sim::Device device(2);
  Enactor enactor(device);
  const EnactorStats stats =
      enactor.enact([](std::int32_t iteration) { return iteration < 4; });
  EXPECT_EQ(stats.iterations, 5);  // 0..4 inclusive; 4 returns false
  EXPECT_FALSE(stats.hit_iteration_cap);
}

TEST(Enactor, SingleIteration) {
  sim::Device device(1);
  Enactor enactor(device);
  const EnactorStats stats = enactor.enact([](std::int32_t) { return false; });
  EXPECT_EQ(stats.iterations, 1);
}

TEST(Enactor, IterationCapTriggers) {
  sim::Device device(1);
  Enactor enactor(device, 10);
  const EnactorStats stats = enactor.enact([](std::int32_t) { return true; });
  EXPECT_EQ(stats.iterations, 10);
  EXPECT_TRUE(stats.hit_iteration_cap);
}

TEST(Enactor, CountsKernelLaunchesInsideBody) {
  sim::Device device(2);
  Enactor enactor(device);
  const EnactorStats stats = enactor.enact([&](std::int32_t iteration) {
    device.launch("test::a", 8, [](std::int64_t) {});
    device.launch("test::b", 8, [](std::int64_t) {});
    return iteration < 2;
  });
  EXPECT_EQ(stats.iterations, 3);
  EXPECT_EQ(stats.kernel_launches, 6u);
}

TEST(Enactor, BodyReceivesAscendingIterationNumbers) {
  sim::Device device(1);
  Enactor enactor(device);
  std::int32_t last = -1;
  enactor.enact([&](std::int32_t iteration) {
    EXPECT_EQ(iteration, last + 1);
    last = iteration;
    return iteration < 7;
  });
  EXPECT_EQ(last, 7);
}

}  // namespace
}  // namespace gcol::gr
