#include <gtest/gtest.h>

#include "graphblas/grb.hpp"

namespace gcol::grb {
namespace {

TEST(EWiseAdd, DenseDenseAppliesOpEverywhere) {
  Vector<int> u(4), v(4), w(4);
  u.fill(3);
  v.fill(4);
  EXPECT_EQ(eWiseAdd(w, nullptr, Plus{}, u, v), Info::kSuccess);
  const auto dv = w.dense_values();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dv[static_cast<std::size_t>(i)], 7);
}

TEST(EWiseAdd, UnionSemanticsCopySingleOperand) {
  Vector<int> u(5), v(5), w(5);
  u.set_element(0, 10);
  u.set_element(2, 20);
  v.set_element(2, 5);
  v.set_element(4, 40);
  EXPECT_EQ(eWiseAdd(w, nullptr, Plus{}, u, v), Info::kSuccess);
  EXPECT_EQ(w.nvals(), 3);
  int out = 0;
  w.extract_element(&out, 0);
  EXPECT_EQ(out, 10);  // only u
  w.extract_element(&out, 2);
  EXPECT_EQ(out, 25);  // both -> op
  w.extract_element(&out, 4);
  EXPECT_EQ(out, 40);  // only v
  EXPECT_FALSE(w.has(1));
}

TEST(EWiseAdd, GreaterProducesIndicator) {
  Vector<int> u(3), v(3), w(3);
  u.adopt_dense({5, 2, 7});
  v.adopt_dense({3, 9, 7});
  EXPECT_EQ(eWiseAdd(w, nullptr, Greater{}, u, v), Info::kSuccess);
  const auto dv = w.dense_values();
  EXPECT_EQ(dv[0], 1);
  EXPECT_EQ(dv[1], 0);
  EXPECT_EQ(dv[2], 0);  // strict comparison
}

TEST(EWiseMult, IntersectionSemantics) {
  Vector<int> u(5), v(5), w(5);
  u.set_element(0, 10);
  u.set_element(2, 20);
  v.set_element(2, 5);
  v.set_element(4, 40);
  EXPECT_EQ(eWiseMult(w, nullptr, Times{}, u, v), Info::kSuccess);
  EXPECT_EQ(w.nvals(), 1);
  int out = 0;
  w.extract_element(&out, 2);
  EXPECT_EQ(out, 100);
}

TEST(EWiseMult, DenseDense) {
  Vector<int> u(3), v(3), w(3);
  u.adopt_dense({1, 2, 3});
  v.adopt_dense({4, 5, 6});
  EXPECT_EQ(eWiseMult(w, nullptr, Times{}, u, v), Info::kSuccess);
  const auto dv = w.dense_values();
  EXPECT_EQ(dv[0], 4);
  EXPECT_EQ(dv[1], 10);
  EXPECT_EQ(dv[2], 18);
}

TEST(EWiseAdd, MaskFiltersOutput) {
  Vector<int> u(4), v(4), w(4), mask(4);
  u.fill(1);
  v.fill(1);
  w.fill(-1);
  mask.adopt_dense({0, 1, 0, 1});
  EXPECT_EQ(eWiseAdd(w, &mask, Plus{}, u, v), Info::kSuccess);
  const auto dv = w.dense_values();
  EXPECT_EQ(dv[0], -1);  // mask 0: old value kept
  EXPECT_EQ(dv[1], 2);
  EXPECT_EQ(dv[2], -1);
  EXPECT_EQ(dv[3], 2);
}

TEST(EWiseMult, MixedValueTypesCastToOutput) {
  Vector<std::int64_t> u(3);
  Vector<std::int32_t> v(3);
  Vector<std::int64_t> w(3);
  u.adopt_dense({1LL << 40, 2, 3});
  v.adopt_dense({2, 3, 4});
  EXPECT_EQ(eWiseMult(w, nullptr, Times{}, u, v), Info::kSuccess);
  const auto dv = w.dense_values();
  EXPECT_EQ(dv[0], 1LL << 41);
}

TEST(EWiseAdd, DimensionMismatchRejected) {
  Vector<int> u(3), v(4), w(3);
  EXPECT_EQ(eWiseAdd(w, nullptr, Plus{}, u, v), Info::kDimensionMismatch);
}

TEST(EWiseAdd, EmptyInputsGiveEmptyOutput) {
  Vector<int> u(5), v(5), w(5);
  w.set_element(1, 99);
  Descriptor desc;
  desc.replace = true;
  EXPECT_EQ(eWiseAdd(w, nullptr, Plus{}, u, v, desc), Info::kSuccess);
  EXPECT_EQ(w.nvals(), 0);
}

TEST(Operators, MonoidIdentities) {
  EXPECT_EQ(plus_monoid<int>().identity, 0);
  EXPECT_EQ(max_monoid<int>().identity, std::numeric_limits<int>::lowest());
  EXPECT_EQ(min_monoid<int>().identity, std::numeric_limits<int>::max());
  EXPECT_EQ(lor_monoid<int>().identity, 0);
}

TEST(Operators, SemiringComponents) {
  const auto s = max_times_semiring<int>();
  EXPECT_EQ(s.add(3, 5), 5);
  EXPECT_EQ(s.mul(3, 5), 15);
  const auto b = boolean_semiring<int>();
  EXPECT_EQ(b.add(0, 1), 1);
  EXPECT_EQ(b.mul(2, 0), 0);
  EXPECT_EQ(b.mul(2, 3), 1);
}

}  // namespace
}  // namespace gcol::grb
