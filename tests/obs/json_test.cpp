// Unit tests for the observability JSON writer: escaping, insertion-order
// stability (the property the gcol-bench-v1 schema relies on), compact vs
// pretty serialization, and the file writer.

#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

namespace gcol::obs {
namespace {

TEST(Json, ScalarsSerialize) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(std::int64_t{-42}).dump(), "-42");
  EXPECT_EQ(Json(7).dump(), "7");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, EscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(Json::escape("plain"), "plain");
  EXPECT_EQ(Json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(Json::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(Json::escape(std::string_view("\r\b\f", 3)), "\\r\\b\\f");
  // Control characters without a short form use \u00XX.
  EXPECT_EQ(Json::escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  // UTF-8 multibyte sequences pass through untouched.
  EXPECT_EQ(Json::escape("π"), "π");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j.set("zebra", 1);
  j.set("apple", 2);
  j.set("mango", 3);
  ASSERT_EQ(j.keys().size(), 3u);
  EXPECT_EQ(j.keys()[0], "zebra");
  EXPECT_EQ(j.keys()[1], "apple");
  EXPECT_EQ(j.keys()[2], "mango");
  EXPECT_EQ(j.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(Json, SetReplacesInPlaceWithoutReordering) {
  Json j = Json::object();
  j.set("first", 1);
  j.set("second", 2);
  j.set("first", 10);  // replace, not append
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.dump(), "{\"first\":10,\"second\":2}");
  ASSERT_NE(j.find("first"), nullptr);
  EXPECT_EQ(j.find("first")->as_int(), 10);
  EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(Json, NestedStructuresSerializeCompact) {
  Json inner = Json::object();
  inner.set("colors", 4);
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(2);
  inner.set("series", std::move(arr));
  Json doc = Json::object();
  doc.set("dataset", "offshore");
  doc.set("metrics", std::move(inner));
  EXPECT_EQ(doc.dump(),
            "{\"dataset\":\"offshore\","
            "\"metrics\":{\"colors\":4,\"series\":[1,2]}}");
}

TEST(Json, PrettyPrintIndents) {
  Json doc = Json::object();
  doc.set("a", 1);
  Json arr = Json::array();
  arr.push_back("x");
  doc.set("b", std::move(arr));
  EXPECT_EQ(doc.dump(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}");
  EXPECT_EQ(Json::object().dump(2), "{}");
  EXPECT_EQ(Json::array().dump(2), "[]");
}

TEST(Json, ArrayAccessors) {
  Json arr = Json::array();
  arr.push_back(5);
  arr.push_back("s");
  ASSERT_EQ(arr.size(), 2u);
  ASSERT_NE(arr.at(0), nullptr);
  EXPECT_EQ(arr.at(0)->as_int(), 5);
  EXPECT_EQ(arr.at(1)->as_string(), "s");
  EXPECT_EQ(arr.at(2), nullptr);
}

TEST(Json, BenchSchemaKeysComeOutInSchemaOrder) {
  // The exact key sequence gcol-bench-v1 records promise; a regression here
  // breaks downstream consumers that diff reports across runs.
  Json record = Json::object();
  record.set("dataset", "offshore");
  record.set("algorithm", "gunrock_is");
  record.set("ms", 1.25);
  record.set("ms_min", 1.0);
  record.set("colors", 12);
  record.set("iterations", 7);
  record.set("kernel_launches", std::uint64_t{42});
  record.set("conflicts_resolved", std::int64_t{0});
  record.set("valid", true);
  record.set("metrics", Json::object());
  const std::vector<std::string> expected = {
      "dataset", "algorithm",      "ms",
      "ms_min",  "colors",         "iterations",
      "kernel_launches", "conflicts_resolved", "valid",
      "metrics"};
  EXPECT_EQ(record.keys(), expected);
}

TEST(Json, WriteJsonFileRoundTrips) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("gcol_json_test_" + std::to_string(::getpid()) + ".json");
  Json doc = Json::object();
  doc.set("schema", "gcol-bench-v1");
  doc.set("records", Json::array());
  ASSERT_TRUE(write_json_file(path.string(), doc));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), doc.dump(2) + "\n");
  std::error_code ignored;
  std::filesystem::remove(path, ignored);
}

TEST(Json, WriteJsonFileReportsFailure) {
  EXPECT_FALSE(write_json_file("/nonexistent_dir_zz/out.json", Json()));
}

}  // namespace
}  // namespace gcol::obs
