// Randomized conflict-freedom sweep across the worker-count matrix: every
// registered algorithm must produce a proper, complete coloring (checked via
// the independent core/verify pass) on randomized Erdős–Rényi, R-MAT, and
// RGG instances. The binary itself runs under whatever GCOL_THREADS the
// harness sets; tests/CMakeLists.txt registers it at 1 worker (sequential
// semantics), 4 workers (real concurrency), and an oversubscribed 32 workers
// (maximal interleaving pressure), and the ASan/TSan CI jobs run all three —
// this is the safety net for the fused bit-packed kernels, whose single-pass
// mask builds and in-kernel color publishes are exactly the code that a
// worker-count change could break.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "core/registry.hpp"
#include "core/verify.hpp"
#include "graph/build.hpp"
#include "graph/generators/erdos_renyi.hpp"
#include "graph/generators/rgg.hpp"
#include "graph/generators/rmat.hpp"

namespace gcol::color {
namespace {

enum class Family { kErdosRenyi, kRmat, kRgg };

const char* family_name(Family family) {
  switch (family) {
    case Family::kErdosRenyi: return "Gnm";
    case Family::kRmat: return "Rmat";
    case Family::kRgg: return "Rgg";
  }
  return "Unknown";
}

/// A randomized instance: sizes and seeds are drawn from a fixed-seed RNG so
/// the sweep is reproducible per run yet covers a spread of shapes (the
/// trial index perturbs everything).
graph::Csr make_graph(Family family, std::uint64_t trial) {
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15;
  constexpr std::uint64_t kMix = 0x2545F4914F6CDD1D;
  std::mt19937_64 rng(kGolden ^ (trial * kMix) ^
                      static_cast<std::uint64_t>(family));
  const std::uint64_t seed = rng();
  switch (family) {
    case Family::kErdosRenyi: {
      const auto n = static_cast<vid_t>(200 + rng() % 400);
      const auto m = static_cast<std::int64_t>(n) *
                     static_cast<std::int64_t>(2 + rng() % 8);
      return graph::build_csr(graph::generate_erdos_renyi(n, m, seed));
    }
    case Family::kRmat: {
      const int scale = static_cast<int>(8 + rng() % 2);
      const int edge_factor = static_cast<int>(4 + rng() % 8);
      return graph::build_csr(
          graph::generate_rmat(scale, edge_factor, {.seed = seed}));
    }
    case Family::kRgg: {
      const int scale = static_cast<int>(8 + rng() % 2);
      return graph::build_csr(graph::generate_rgg(scale, {.seed = seed}));
    }
  }
  return {};
}

using Param = std::tuple<std::string, Family, std::uint64_t>;

class WorkerMatrixTest : public ::testing::TestWithParam<Param> {};

TEST_P(WorkerMatrixTest, ConflictFree) {
  const auto& [algorithm_name, family, trial] = GetParam();
  const AlgorithmSpec* spec = find_algorithm(algorithm_name);
  ASSERT_NE(spec, nullptr);
  const graph::Csr csr = make_graph(family, trial);

  Options options;
  options.seed = trial * 7919 + 13;
  const Coloring result = spec->run(csr, options);

  ASSERT_EQ(result.colors.size(), static_cast<std::size_t>(csr.num_vertices));
  const auto violation = find_violation(csr, result.colors);
  EXPECT_FALSE(violation.has_value())
      << algorithm_name << " on " << family_name(family) << " trial " << trial
      << ": violation at vertex " << (violation ? violation->vertex : -1)
      << " (neighbor " << (violation ? violation->neighbor : -1) << ", color "
      << (violation ? violation->color : -1) << ")";
  EXPECT_EQ(result.num_colors, count_colors(result.colors));
}

std::vector<Param> make_params() {
  std::vector<Param> params;
  const Family families[] = {Family::kErdosRenyi, Family::kRmat, Family::kRgg};
  for (const AlgorithmSpec& spec : all_algorithms()) {
    for (const Family family : families) {
      for (const std::uint64_t trial : {1ULL, 2ULL}) {
        params.emplace_back(spec.name, family, trial);
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, WorkerMatrixTest, ::testing::ValuesIn(make_params()),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      // No structured bindings here: the macro would split on their commas.
      return std::get<0>(param_info.param) + "_" +
             family_name(std::get<1>(param_info.param)) + "_t" +
             std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace gcol::color
