// Integration tests for the paper's Algorithm 3 (MIS inner loop) and
// Algorithm 4 (Jones-Plassmann min-color helper), transcribed step by step
// against the grb API on hand-checkable graphs — the companions to
// algorithm2_integration_test.cpp.

#include <gtest/gtest.h>

#include "../testing/fixtures.hpp"
#include "core/result.hpp"
#include "graphblas/grb.hpp"

namespace gcol::grb {
namespace {

using Weight = std::int64_t;

TEST(Algorithm3Integration, MisInnerLoopGrowsToMaximalSet) {
  // Path 0-1-2-3-4 with weights 50, 10, 40, 20, 30.
  // Round 1 of the inner loop: local maxima among candidates = {0, 2, 4}
  // (50 > 10; 40 > 10, 20; 30 > 20). Their neighbors {1, 3} are knocked
  // out; round 2 finds no candidates; the set {0, 2, 4} is maximal.
  const graph::Csr csr = gcol::testing::path_graph(5);
  const Matrix<Weight> a(csr);
  Vector<Weight> cand(5), mis(5), max(5), frontier(5), nbr(5);
  cand.adopt_dense({50, 10, 40, 20, 30});
  ASSERT_EQ(assign(mis, nullptr, Weight{0}), Info::kSuccess);

  // ---- inner round 1 ----
  max.clear();
  ASSERT_EQ(vxm(max, &cand, max_times_semiring<Weight>(), cand, a),
            Info::kSuccess);
  ASSERT_EQ(eWiseAdd(frontier, nullptr, Greater{}, cand, max),
            Info::kSuccess);
  Weight succ = 0;
  ASSERT_EQ(reduce(&succ, plus_monoid<Weight>(), frontier), Info::kSuccess);
  EXPECT_EQ(succ, 3);  // vertices 0, 2, 4
  ASSERT_EQ(assign(mis, &frontier, Weight{1}), Info::kSuccess);
  ASSERT_EQ(assign(cand, &frontier, Weight{0}), Info::kSuccess);
  // Remove the new members' neighbors from the candidates (l.19-20).
  nbr.clear();
  ASSERT_EQ(vxm(nbr, &cand, boolean_semiring<Weight>(), frontier, a),
            Info::kSuccess);
  ASSERT_EQ(assign(cand, &nbr, Weight{0}), Info::kSuccess);
  Weight remaining = 0;
  ASSERT_EQ(reduce(&remaining, lor_monoid<Weight>(), cand), Info::kSuccess);
  EXPECT_EQ(remaining, 0);  // no candidates left: set already maximal

  // ---- inner round 2 terminates with an empty frontier ----
  max.clear();
  ASSERT_EQ(vxm(max, &cand, max_times_semiring<Weight>(), cand, a),
            Info::kSuccess);
  ASSERT_EQ(eWiseAdd(frontier, nullptr, Greater{}, cand, max),
            Info::kSuccess);
  ASSERT_EQ(reduce(&succ, plus_monoid<Weight>(), frontier), Info::kSuccess);
  EXPECT_EQ(succ, 0);

  // The MIS is {0, 2, 4} — independent AND maximal.
  Weight value = 0;
  for (const Index member : {Index{0}, Index{2}, Index{4}}) {
    ASSERT_EQ(mis.extract_element(&value, member), Info::kSuccess);
    EXPECT_EQ(value, 1) << "vertex " << member;
  }
  for (const Index outside : {Index{1}, Index{3}}) {
    ASSERT_EQ(mis.extract_element(&value, outside), Info::kSuccess);
    EXPECT_EQ(value, 0) << "vertex " << outside;
  }
}

TEST(Algorithm4Integration, MinColorHelperFindsSmallestUnusedColor) {
  // Star with center 0; leaves 1..4. Colors so far (1-based): center
  // uncolored, leaves colored 1, 2, 4, 2. Frontier = {0}. The helper must
  // report min available color 3 (1, 2, 4 are taken by neighbors).
  const graph::Csr csr = gcol::testing::star_graph(5);
  const Matrix<Weight> a(csr);
  Vector<std::int32_t> c(5);
  c.adopt_dense({0, 1, 2, 4, 2});
  Vector<Weight> frontier(5);
  frontier.fill(0);
  ASSERT_EQ(frontier.set_element(0, 1), Info::kSuccess);

  // l.3: colored neighbors of the frontier (mask = C, value semantics).
  Vector<Weight> nbr(5);
  ASSERT_EQ(vxm(nbr, &c, boolean_semiring<Weight>(), frontier, a),
            Info::kSuccess);
  // l.5: map indicator to neighbor colors.
  Vector<Weight> used(5);
  ASSERT_EQ(eWiseMult(used, nullptr, Times{}, nbr, c), Info::kSuccess);
  // l.7-9: scatter into the possible-colors array.
  constexpr Index kPalette = 7;
  Vector<Weight> palette(kPalette), ascending(kPalette), min_array(kPalette);
  ASSERT_EQ(assign(palette, nullptr, Weight{0}), Info::kSuccess);
  ASSERT_EQ(scatter(palette, nullptr, used, Weight{1}), Info::kSuccess);
  Weight flag = 0;
  ASSERT_EQ(palette.extract_element(&flag, 1), Info::kSuccess);
  EXPECT_EQ(flag, 1);
  ASSERT_EQ(palette.extract_element(&flag, 2), Info::kSuccess);
  EXPECT_EQ(flag, 1);
  ASSERT_EQ(palette.extract_element(&flag, 3), Info::kSuccess);
  EXPECT_EQ(flag, 0);  // 3 unused
  ASSERT_EQ(palette.extract_element(&flag, 4), Info::kSuccess);
  EXPECT_EQ(flag, 1);

  // l.11-14: compare against the ascending ramp and min-reduce.
  ascending.fill(0);
  ASSERT_EQ(apply_indexed(
                ascending, nullptr,
                [](Index i, Weight) { return static_cast<Weight>(i); },
                ascending),
            Info::kSuccess);
  constexpr Weight kNoColor = color::kNoColor;
  ASSERT_EQ(eWiseMult(
                min_array, nullptr,
                [](Weight used_flag, Weight index) {
                  return used_flag == 0 ? index : kNoColor;
                },
                palette, ascending),
            Info::kSuccess);
  ASSERT_EQ(min_array.set_element(0, kNoColor), Info::kSuccess);
  Weight min_color = 0;
  ASSERT_EQ(reduce(&min_color, min_monoid<Weight>(), min_array),
            Info::kSuccess);
  EXPECT_EQ(min_color, 3);
}

}  // namespace
}  // namespace gcol::grb
