#pragma once
// Stream compaction (filter) — the CPU analogue of cub::DeviceSelect, which
// backs Gunrock's frontier filtering and GraphBLAST's sparse-vector
// extraction. Built on exclusive_scan, as on the GPU: flag, scan, scatter.

#include <cstdint>
#include <span>
#include <vector>

#include "sim/device.hpp"
#include "sim/scan.hpp"

namespace gcol::sim {

/// Returns the indices i in [0, n) for which pred(i) is true, in ascending
/// order (the scan makes the scatter stable, as on the GPU).
template <typename Pred>
[[nodiscard]] std::vector<std::int64_t> compact_indices(Device& device,
                                                        std::int64_t n,
                                                        Pred pred) {
  if (n <= 0) return {};
  std::vector<std::int64_t> flags(static_cast<std::size_t>(n));
  device.launch("sim::compact_flag", n, [&](std::int64_t i) {
    flags[static_cast<std::size_t>(i)] = pred(i) ? 1 : 0;
  });
  std::vector<std::int64_t> positions(static_cast<std::size_t>(n));
  const std::int64_t kept = exclusive_scan<std::int64_t>(
      device, std::span<const std::int64_t>(flags), std::span(positions));
  std::vector<std::int64_t> out(static_cast<std::size_t>(kept));
  device.launch("sim::compact_scatter", n, [&](std::int64_t i) {
    if (flags[static_cast<std::size_t>(i)] != 0) {
      out[static_cast<std::size_t>(positions[static_cast<std::size_t>(i)])] =
          i;
    }
  });
  return out;
}

/// Compacts `values[i]` for which pred(values[i], i) holds into a new vector,
/// preserving order.
template <typename T, typename Pred>
[[nodiscard]] std::vector<T> compact_values(Device& device,
                                            std::span<const T> values,
                                            Pred pred) {
  const auto n = static_cast<std::int64_t>(values.size());
  if (n == 0) return {};
  std::vector<std::int64_t> flags(static_cast<std::size_t>(n));
  device.launch("sim::compact_flag", n, [&](std::int64_t i) {
    flags[static_cast<std::size_t>(i)] =
        pred(values[static_cast<std::size_t>(i)], i) ? 1 : 0;
  });
  std::vector<std::int64_t> positions(static_cast<std::size_t>(n));
  const std::int64_t kept = exclusive_scan<std::int64_t>(
      device, std::span<const std::int64_t>(flags), std::span(positions));
  std::vector<T> out(static_cast<std::size_t>(kept));
  device.launch("sim::compact_scatter", n, [&](std::int64_t i) {
    if (flags[static_cast<std::size_t>(i)] != 0) {
      out[static_cast<std::size_t>(positions[static_cast<std::size_t>(i)])] =
          values[static_cast<std::size_t>(i)];
    }
  });
  return out;
}

}  // namespace gcol::sim
