// Ablation (paper §IV-B2): the per-vertex hash-table size "is a modifiable
// value, and is inversely related to the number of conflicts because the
// table does not guarantee storing all prohibited colors". Sweeps the table
// size on the G3_circuit analogue and an RGG and reports conflicts, colors
// and runtime.

#include <cstdio>
#include <string>

#include "common/bench_util.hpp"
#include "core/gunrock_hash.hpp"
#include "core/verify.hpp"
#include "graph/build.hpp"
#include "graph/datasets.hpp"
#include "graph/generators/rgg.hpp"
#include "sim/timer.hpp"

namespace {

using namespace gcol;

void sweep(const char* name, const graph::Csr& csr, const bench::Args& args) {
  std::printf("-- %s (V=%d, E=%lld) --\n", name, csr.num_vertices,
              static_cast<long long>(csr.num_undirected_edges()));
  bench::TablePrinter table(
      {"hash_size", "ms", "colors", "conflicts", "iterations"}, args.csv);
  for (const std::int32_t size : {1, 2, 4, 8, 16, 32}) {
    double total_ms = 0.0;
    color::Coloring result;
    for (int r = 0; r < args.runs; ++r) {
      color::GunrockHashOptions options;
      options.seed = args.seed;
      options.hash_size = size;
      sim::Stopwatch watch;
      result = color::gunrock_hash_color(csr, options);
      total_ms += watch.elapsed_ms();
      if (!color::is_valid_coloring(csr, result.colors)) {
        std::fprintf(stderr, "INVALID coloring at hash_size=%d\n", size);
        std::exit(1);
      }
    }
    table.add_row({std::to_string(size), bench::fmt(total_ms / args.runs),
                   std::to_string(result.num_colors),
                   std::to_string(result.conflicts_resolved),
                   std::to_string(result.iterations)});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  std::printf("== Ablation: hash-table size vs conflicts/colors/runtime "
              "(scale=%.3f, runs=%d) ==\n\n",
              args.scale, args.runs);
  sweep("G3_circuit analogue",
        graph::build_dataset(*graph::find_dataset("G3_circuit"), args.scale),
        args);
  sweep("rgg_n_2_14_s0",
        graph::build_csr(graph::generate_rgg(14, {.seed = args.seed + 200})),
        args);
  return 0;
}
