// Tests targeting the bitmap representation specifically: masked operations
// install bitmap outputs (no compaction), and every op must read bitmap
// inputs correctly.

#include <gtest/gtest.h>

#include "graphblas/grb.hpp"

namespace gcol::grb {
namespace {

/// Produces a bitmap vector with entries at even positions via a masked op.
Vector<int> make_bitmap(Index n) {
  Vector<int> w(n);
  Vector<int> mask(n);
  mask.fill(0);
  for (Index i = 0; i < n; i += 2) mask.set_element(i, 1);
  Descriptor desc;
  desc.replace = true;
  EXPECT_EQ(assign(w, &mask, 7, desc), Info::kSuccess);
  return w;
}

TEST(Bitmap, MaskedAssignInstallsBitmap) {
  Vector<int> w = make_bitmap(10);
  EXPECT_EQ(w.storage(), Storage::kBitmap);
  EXPECT_EQ(w.nvals(), 5);
  EXPECT_TRUE(w.has(0));
  EXPECT_FALSE(w.has(1));
  int out = 0;
  EXPECT_EQ(w.extract_element(&out, 4), Info::kSuccess);
  EXPECT_EQ(out, 7);
  EXPECT_EQ(w.extract_element(&out, 5), Info::kNoValue);
}

TEST(Bitmap, SetElementUpdatesPresenceAndCount) {
  Vector<int> w = make_bitmap(10);
  EXPECT_EQ(w.set_element(1, 99), Info::kSuccess);
  EXPECT_EQ(w.nvals(), 6);
  EXPECT_TRUE(w.has(1));
  // Overwriting an existing entry must not change nvals.
  EXPECT_EQ(w.set_element(0, 3), Info::kSuccess);
  EXPECT_EQ(w.nvals(), 6);
}

TEST(Bitmap, DensifyFillsMissing) {
  Vector<int> w = make_bitmap(6);
  w.densify(-1);
  EXPECT_TRUE(w.is_dense());
  const auto dv = w.dense_values();
  EXPECT_EQ(dv[0], 7);
  EXPECT_EQ(dv[1], -1);
  EXPECT_EQ(dv[5], -1);
}

TEST(Bitmap, ReduceSkipsMissingPositions) {
  Vector<int> w = make_bitmap(10);  // five 7s
  int total = 0;
  EXPECT_EQ(reduce(&total, plus_monoid<int>(), w), Info::kSuccess);
  EXPECT_EQ(total, 35);
}

TEST(Bitmap, EWiseAddUnionWithBitmapInput) {
  Vector<int> a = make_bitmap(6);  // entries at 0,2,4 (value 7)
  Vector<int> b(6);
  b.set_element(1, 10);
  b.set_element(2, 20);
  Vector<int> w(6);
  EXPECT_EQ(eWiseAdd(w, nullptr, Plus{}, a, b), Info::kSuccess);
  EXPECT_EQ(w.nvals(), 4);
  int out = 0;
  w.extract_element(&out, 0);
  EXPECT_EQ(out, 7);
  w.extract_element(&out, 1);
  EXPECT_EQ(out, 10);
  w.extract_element(&out, 2);
  EXPECT_EQ(out, 27);
  EXPECT_FALSE(w.has(3));
}

TEST(Bitmap, EWiseMultIntersectionWithBitmapInput) {
  Vector<int> a = make_bitmap(6);
  Vector<int> b(6);
  b.fill(3);
  Vector<int> w(6);
  EXPECT_EQ(eWiseMult(w, nullptr, Times{}, a, b), Info::kSuccess);
  EXPECT_EQ(w.nvals(), 3);
  int out = 0;
  w.extract_element(&out, 2);
  EXPECT_EQ(out, 21);
}

TEST(Bitmap, ApplyPreservesBitmapStructure) {
  Vector<int> a = make_bitmap(8);
  Vector<int> w(8);
  EXPECT_EQ(apply(w, nullptr, [](int x) { return x * 2; }, a),
            Info::kSuccess);
  EXPECT_EQ(w.nvals(), 4);
  int out = 0;
  w.extract_element(&out, 6);
  EXPECT_EQ(out, 14);
  EXPECT_FALSE(w.has(7));
}

TEST(Bitmap, UsableAsValueMask) {
  Vector<int> mask = make_bitmap(6);  // nonzero at even positions
  Vector<int> w(6);
  w.fill(0);
  EXPECT_EQ(assign(w, &mask, 9), Info::kSuccess);
  const auto dv = w.dense_values();
  EXPECT_EQ(dv[0], 9);
  EXPECT_EQ(dv[1], 0);
  EXPECT_EQ(dv[2], 9);
}

TEST(Bitmap, ScatterReadsBitmapEntries) {
  Vector<int> u = make_bitmap(6);  // value 7 at 0,2,4
  Vector<int> w(10);
  w.fill(0);
  EXPECT_EQ(scatter(w, nullptr, u, 1), Info::kSuccess);
  const auto dv = w.dense_values();
  EXPECT_EQ(dv[7], 1);  // all entries scatter to target 7
  int written = 0;
  for (const int x : dv) written += (x != 0);
  EXPECT_EQ(written, 1);
}

TEST(Bitmap, ClearResetsToEmptySparse) {
  Vector<int> w = make_bitmap(6);
  w.clear();
  EXPECT_EQ(w.storage(), Storage::kSparse);
  EXPECT_EQ(w.nvals(), 0);
}

TEST(Bitmap, AdoptBitmapDirect) {
  Vector<int> w(4);
  w.adopt_bitmap({1, 2, 3, 4}, {1, 0, 0, 1}, 2);
  EXPECT_EQ(w.nvals(), 2);
  EXPECT_TRUE(w.has(0));
  EXPECT_FALSE(w.has(2));
  int out = 0;
  EXPECT_EQ(w.extract_element(&out, 3), Info::kSuccess);
  EXPECT_EQ(out, 4);
}

}  // namespace
}  // namespace gcol::grb
