
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/grb/algorithm2_integration_test.cpp" "tests/CMakeFiles/gcol_grb_tests.dir/grb/algorithm2_integration_test.cpp.o" "gcc" "tests/CMakeFiles/gcol_grb_tests.dir/grb/algorithm2_integration_test.cpp.o.d"
  "/root/repo/tests/grb/algorithm34_integration_test.cpp" "tests/CMakeFiles/gcol_grb_tests.dir/grb/algorithm34_integration_test.cpp.o" "gcc" "tests/CMakeFiles/gcol_grb_tests.dir/grb/algorithm34_integration_test.cpp.o.d"
  "/root/repo/tests/grb/assign_apply_test.cpp" "tests/CMakeFiles/gcol_grb_tests.dir/grb/assign_apply_test.cpp.o" "gcc" "tests/CMakeFiles/gcol_grb_tests.dir/grb/assign_apply_test.cpp.o.d"
  "/root/repo/tests/grb/bitmap_test.cpp" "tests/CMakeFiles/gcol_grb_tests.dir/grb/bitmap_test.cpp.o" "gcc" "tests/CMakeFiles/gcol_grb_tests.dir/grb/bitmap_test.cpp.o.d"
  "/root/repo/tests/grb/ewise_test.cpp" "tests/CMakeFiles/gcol_grb_tests.dir/grb/ewise_test.cpp.o" "gcc" "tests/CMakeFiles/gcol_grb_tests.dir/grb/ewise_test.cpp.o.d"
  "/root/repo/tests/grb/model_check_test.cpp" "tests/CMakeFiles/gcol_grb_tests.dir/grb/model_check_test.cpp.o" "gcc" "tests/CMakeFiles/gcol_grb_tests.dir/grb/model_check_test.cpp.o.d"
  "/root/repo/tests/grb/reduce_scatter_test.cpp" "tests/CMakeFiles/gcol_grb_tests.dir/grb/reduce_scatter_test.cpp.o" "gcc" "tests/CMakeFiles/gcol_grb_tests.dir/grb/reduce_scatter_test.cpp.o.d"
  "/root/repo/tests/grb/vector_test.cpp" "tests/CMakeFiles/gcol_grb_tests.dir/grb/vector_test.cpp.o" "gcc" "tests/CMakeFiles/gcol_grb_tests.dir/grb/vector_test.cpp.o.d"
  "/root/repo/tests/grb/vxm_test.cpp" "tests/CMakeFiles/gcol_grb_tests.dir/grb/vxm_test.cpp.o" "gcc" "tests/CMakeFiles/gcol_grb_tests.dir/grb/vxm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/gcol_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gcol_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gcol_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gcol_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
