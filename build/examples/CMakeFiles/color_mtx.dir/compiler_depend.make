# Empty compiler generated dependencies file for color_mtx.
# This may be replaced when dependencies are built.
