#pragma once
// Counter-based random numbers, the CPU analogue of cuRAND's Philox usage in
// the paper's implementations: every vertex derives its random weight purely
// from (seed, counter, vertex id), so results are reproducible regardless of
// how work is scheduled across workers — a property ordinary sequential RNGs
// lose under parallel execution.

#include <cstdint>

namespace gcol::sim {

/// SplitMix64 finalizer — a strong 64-bit mixing function.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stateless counter-based generator: hash(seed, stream, counter).
/// Used wherever the paper calls `set_random()` / generateRandomNumbers.
class CounterRng {
 public:
  constexpr explicit CounterRng(std::uint64_t seed,
                                std::uint64_t stream = 0) noexcept
      : seed_(mix64(seed ^ (stream * 0xda942042e4dd58b5ULL))) {}

  /// 64 uniform bits for counter value `i` (typically a vertex id).
  [[nodiscard]] constexpr std::uint64_t bits(std::uint64_t i) const noexcept {
    return mix64(seed_ ^ mix64(i));
  }

  /// Uniform 31-bit non-negative int — matches the paper's use of random
  /// *integer* vertex weights compared with >/<.
  [[nodiscard]] constexpr std::int32_t uniform_int31(
      std::uint64_t i) const noexcept {
    return static_cast<std::int32_t>(bits(i) >> 33);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] constexpr double uniform_double(std::uint64_t i) const noexcept {
    return static_cast<double>(bits(i) >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) for bound > 0 (bias negligible for the
  /// bounds used here; the generators are not cryptographic).
  [[nodiscard]] constexpr std::uint64_t uniform_below(
      std::uint64_t i, std::uint64_t bound) const noexcept {
    return bits(i) % bound;
  }

 private:
  std::uint64_t seed_;
};

/// The per-(iteration, vertex) hash the Naumov JPL/CC baselines use instead
/// of a stored random-weight array: each coloring iteration re-randomizes
/// priorities without a memory pass.
[[nodiscard]] constexpr std::uint32_t iteration_hash(
    std::uint64_t seed, std::uint32_t iteration, std::int64_t vertex) noexcept {
  return static_cast<std::uint32_t>(
      mix64(seed ^ (static_cast<std::uint64_t>(iteration) << 32) ^
            static_cast<std::uint64_t>(vertex)) >>
      32);
}

}  // namespace gcol::sim
