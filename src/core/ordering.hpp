#pragma once
// Vertex ordering heuristics shared by the sequential greedy baseline and
// the Jones-Plassmann priority variants (paper §II and the future-work
// largest-degree-first discussion).
//
// Every heuristic is deterministic in the *original* vertex ids
// (Options::original_id): run on a reorder-relabeled graph, each returns the
// same logical vertex sequence it would return on the input numbering, so
// greedy/JP colorings are invariant to the registry's reorder strategies.
// The default Options (empty original_ids) makes internal ids the original
// ids — the historical behavior.

#include <cstdint>
#include <vector>

#include "core/result.hpp"
#include "graph/csr.hpp"

namespace gcol::color {

/// Vertices in ascending original id: 0, 1, ..., n-1 on an unrelabeled
/// graph, the input numbering's order otherwise.
[[nodiscard]] std::vector<vid_t> natural_order(vid_t num_vertices,
                                               const Options& options = {});

/// Uniform shuffle (Fisher-Yates over a counter RNG; deterministic in seed,
/// drawn in the original id domain).
[[nodiscard]] std::vector<vid_t> random_order(vid_t num_vertices,
                                              std::uint64_t seed,
                                              const Options& options = {});

/// Static degree, descending (Welsh-Powell); ties by ascending original id.
[[nodiscard]] std::vector<vid_t> largest_degree_first_order(
    const graph::Csr& csr, const Options& options = {});

/// Matula-Beck smallest-degree-last (degeneracy) order: greedy coloring in
/// this order uses at most degeneracy + 1 colors. Lazy-deletion min-heap
/// keyed (current degree, original id), O((n + m) log n).
[[nodiscard]] std::vector<vid_t> smallest_degree_last_order(
    const graph::Csr& csr, const Options& options = {});

}  // namespace gcol::color
