// Coloring-accelerated incomplete-LU triangular solves — the application
// behind the Naumov et al. baseline ("Parallel graph coloring with
// applications to the incomplete-LU factorization on the GPU").
//
// The sparse triangular solves L y = b and U x = y that apply an ILU(0)
// preconditioner are sequential along dependency chains. Level scheduling
// extracts parallelism: rows grouped into levels where level k depends only
// on levels < k. With the NATURAL ordering of a mesh matrix the dependency
// chains are long (many levels, little parallelism per level); REORDERING
// THE MATRIX BY COLOR CLASS bounds the level count by the number of colors,
// because a row's same-color neighbors never appear in its triangular part.
//
// This example builds the 5-point Laplacian, computes ILU(0) in natural and
// in color order, compares level counts / average level widths, and checks
// both preconditioners solve equally well inside Richardson iteration.

#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/gcol.hpp"
#include "graph/generators/grid.hpp"

namespace {

using namespace gcol;

/// Sparse row-major matrix with unit-pattern of (diagonal + adjacency).
struct SparseMatrix {
  vid_t n = 0;
  std::vector<eid_t> row_offsets;
  std::vector<vid_t> columns;
  std::vector<double> values;
};

/// A = 4I - adjacency of `csr`, rows/columns permuted by `order` (order[k] =
/// original vertex of new row k).
SparseMatrix build_laplacian(const graph::Csr& csr,
                             const std::vector<vid_t>& order) {
  const vid_t n = csr.num_vertices;
  std::vector<vid_t> new_index(static_cast<std::size_t>(n));
  for (vid_t k = 0; k < n; ++k) {
    new_index[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] =
        k;
  }
  SparseMatrix a;
  a.n = n;
  a.row_offsets.push_back(0);
  for (vid_t row = 0; row < n; ++row) {
    const vid_t v = order[static_cast<std::size_t>(row)];
    // Collect (new column, value): diagonal + neighbors, sorted.
    std::vector<std::pair<vid_t, double>> entries;
    entries.emplace_back(row, 4.0);
    for (const vid_t u : csr.neighbors(v)) {
      entries.emplace_back(new_index[static_cast<std::size_t>(u)], -1.0);
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& [column, value] : entries) {
      a.columns.push_back(column);
      a.values.push_back(value);
    }
    a.row_offsets.push_back(static_cast<eid_t>(a.columns.size()));
  }
  return a;
}

/// In-place ILU(0): incomplete LU with zero fill (values only at A's
/// pattern). Classic IKJ formulation.
void ilu0(SparseMatrix& a) {
  // diag_pos[r] = flat index of the diagonal entry of row r.
  std::vector<eid_t> diag_pos(static_cast<std::size_t>(a.n));
  for (vid_t r = 0; r < a.n; ++r) {
    for (eid_t e = a.row_offsets[static_cast<std::size_t>(r)];
         e < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++e) {
      if (a.columns[static_cast<std::size_t>(e)] == r) {
        diag_pos[static_cast<std::size_t>(r)] = e;
      }
    }
  }
  for (vid_t i = 1; i < a.n; ++i) {
    for (eid_t ke = a.row_offsets[static_cast<std::size_t>(i)];
         ke < a.row_offsets[static_cast<std::size_t>(i) + 1]; ++ke) {
      const vid_t k = a.columns[static_cast<std::size_t>(ke)];
      if (k >= i) break;  // lower part only (columns sorted)
      const double pivot =
          a.values[static_cast<std::size_t>(
              diag_pos[static_cast<std::size_t>(k)])];
      const double lik = a.values[static_cast<std::size_t>(ke)] / pivot;
      a.values[static_cast<std::size_t>(ke)] = lik;
      // Subtract lik * U(k, j) for j in row i's pattern beyond k.
      for (eid_t je = ke + 1;
           je < a.row_offsets[static_cast<std::size_t>(i) + 1]; ++je) {
        const vid_t j = a.columns[static_cast<std::size_t>(je)];
        // Find A(k, j) in row k, if present.
        for (eid_t se = a.row_offsets[static_cast<std::size_t>(k)];
             se < a.row_offsets[static_cast<std::size_t>(k) + 1]; ++se) {
          if (a.columns[static_cast<std::size_t>(se)] == j) {
            a.values[static_cast<std::size_t>(je)] -=
                lik * a.values[static_cast<std::size_t>(se)];
            break;
          }
        }
      }
    }
  }
}

/// Dependency levels of the lower-triangular solve: level(r) = 1 + max
/// level over r's lower-pattern columns.
std::vector<vid_t> solve_levels(const SparseMatrix& a) {
  std::vector<vid_t> level(static_cast<std::size_t>(a.n), 0);
  for (vid_t r = 0; r < a.n; ++r) {
    vid_t deepest = 0;
    for (eid_t e = a.row_offsets[static_cast<std::size_t>(r)];
         e < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++e) {
      const vid_t c = a.columns[static_cast<std::size_t>(e)];
      if (c < r) {
        deepest = std::max(deepest,
                           static_cast<vid_t>(
                               level[static_cast<std::size_t>(c)] + 1));
      }
    }
    level[static_cast<std::size_t>(r)] = deepest;
  }
  return level;
}

/// Applies the ILU(0) preconditioner: y = U^-1 L^-1 r (sequential solves;
/// the level structure determines how parallel they COULD be).
std::vector<double> apply_preconditioner(const SparseMatrix& f,
                                         const std::vector<double>& r,
                                         const std::vector<eid_t>& diag) {
  const auto un = static_cast<std::size_t>(f.n);
  std::vector<double> y(un);
  for (vid_t i = 0; i < f.n; ++i) {  // L y = r (unit diagonal L)
    double acc = r[static_cast<std::size_t>(i)];
    for (eid_t e = f.row_offsets[static_cast<std::size_t>(i)];
         e < f.row_offsets[static_cast<std::size_t>(i) + 1]; ++e) {
      const vid_t c = f.columns[static_cast<std::size_t>(e)];
      if (c < i) acc -= f.values[static_cast<std::size_t>(e)] * y[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  std::vector<double> x(un);
  for (vid_t i = f.n - 1; i >= 0; --i) {  // U x = y
    double acc = y[static_cast<std::size_t>(i)];
    for (eid_t e = f.row_offsets[static_cast<std::size_t>(i)];
         e < f.row_offsets[static_cast<std::size_t>(i) + 1]; ++e) {
      const vid_t c = f.columns[static_cast<std::size_t>(e)];
      if (c > i) acc -= f.values[static_cast<std::size_t>(e)] * x[static_cast<std::size_t>(c)];
    }
    x[static_cast<std::size_t>(i)] =
        acc / f.values[static_cast<std::size_t>(diag[static_cast<std::size_t>(i)])];
    if (i == 0) break;
  }
  return x;
}

struct LevelStats {
  vid_t levels = 0;
  double average_width = 0.0;
};

LevelStats summarize_levels(const std::vector<vid_t>& level) {
  LevelStats stats;
  for (const vid_t l : level) stats.levels = std::max(stats.levels, l);
  ++stats.levels;
  stats.average_width =
      static_cast<double>(level.size()) / static_cast<double>(stats.levels);
  return stats;
}

}  // namespace

int main() {
  constexpr vid_t kSide = 48;
  const graph::Csr csr =
      graph::build_csr(graph::generate_grid2d(kSide, kSide));
  const auto un = static_cast<std::size_t>(csr.num_vertices);
  std::printf("ILU(0) level scheduling, %dx%d Poisson (%d rows)\n\n", kSide,
              kSide, csr.num_vertices);

  // Color-order permutation: rows grouped by color class.
  const color::Coloring coloring = color::grb_mis_color(csr);
  if (!color::is_valid_coloring(csr, coloring.colors)) return 1;
  std::vector<vid_t> natural(un), by_color(un);
  std::iota(natural.begin(), natural.end(), vid_t{0});
  std::iota(by_color.begin(), by_color.end(), vid_t{0});
  std::stable_sort(by_color.begin(), by_color.end(), [&](vid_t a, vid_t b) {
    return coloring.colors[static_cast<std::size_t>(a)] <
           coloring.colors[static_cast<std::size_t>(b)];
  });

  std::printf("%-16s %8s %16s\n", "ordering", "levels", "avg rows/level");
  std::vector<SparseMatrix> factors;
  for (const auto& [name, order] :
       {std::pair{"natural", natural}, std::pair{"by color", by_color}}) {
    SparseMatrix a = build_laplacian(csr, order);
    const LevelStats before = summarize_levels(solve_levels(a));
    ilu0(a);
    std::printf("%-16s %8d %16.1f\n", name, before.levels,
                before.average_width);
    factors.push_back(std::move(a));
  }
  std::printf("\ncolor ordering bounds the level count by the color count "
              "(%d colors) instead of the mesh diameter — each level is a "
              "parallel triangular-solve step.\n\n",
              coloring.num_colors);

  // Both orderings must precondition equally well: run 30 Richardson
  // iterations x_{k+1} = x_k + M^-1 (b - A x_k) and compare residuals.
  for (std::size_t which = 0; which < factors.size(); ++which) {
    const std::vector<vid_t>& order = which == 0 ? natural : by_color;
    const SparseMatrix a = build_laplacian(csr, order);
    SparseMatrix f = a;
    ilu0(f);
    std::vector<eid_t> diag(un);
    for (vid_t r = 0; r < f.n; ++r) {
      for (eid_t e = f.row_offsets[static_cast<std::size_t>(r)];
           e < f.row_offsets[static_cast<std::size_t>(r) + 1]; ++e) {
        if (f.columns[static_cast<std::size_t>(e)] == r) {
          diag[static_cast<std::size_t>(r)] = e;
        }
      }
    }
    std::vector<double> b(un, 1.0), x(un, 0.0), residual(un);
    double norm = 0.0;
    for (int iteration = 0; iteration < 30; ++iteration) {
      norm = 0.0;
      for (vid_t r = 0; r < a.n; ++r) {
        double ax = 0.0;
        for (eid_t e = a.row_offsets[static_cast<std::size_t>(r)];
             e < a.row_offsets[static_cast<std::size_t>(r) + 1]; ++e) {
          ax += a.values[static_cast<std::size_t>(e)] *
                x[static_cast<std::size_t>(
                    a.columns[static_cast<std::size_t>(e)])];
        }
        residual[static_cast<std::size_t>(r)] =
            b[static_cast<std::size_t>(r)] - ax;
        norm += residual[static_cast<std::size_t>(r)] *
                residual[static_cast<std::size_t>(r)];
      }
      const std::vector<double> correction =
          apply_preconditioner(f, residual, diag);
      for (std::size_t i = 0; i < un; ++i) x[i] += correction[i];
    }
    const double initial = std::sqrt(static_cast<double>(un));  // ||b||
    std::printf("ILU(0)-Richardson, %s ordering: residual %.3e -> %.3e "
                "(reduction %.1fx) after 30 iterations\n",
                which == 0 ? "natural " : "by-color", initial,
                std::sqrt(norm), initial / std::sqrt(norm));
  }
  std::printf("\nBoth preconditioners converge; the by-color one trades a "
              "little convergence rate for ~19x more parallelism per solve "
              "step — the exact tradeoff the Naumov et al. report "
              "quantifies for ILU on the GPU.\n");
  return 0;
}
